//! The live metrics plane: per-request trace records in a bounded ring
//! buffer plus sliding-window aggregates, served by `{"cmd": "metrics"}`
//! and `{"cmd": "trace", "n": K}` while the server is running — the
//! streaming counterpart of the end-of-run `RunProfile`.
//!
//! ## Cost model
//!
//! The plane is touched **once per micro-batch**, on the worker thread,
//! *outside* the forward-pass span: one atomic batch-id bump, a handful of
//! relaxed counter adds, and two short mutex sections (the sliding windows
//! and the trace ring). Nothing here runs inside an `axnn-par` region and
//! nothing feeds back into the numerics, so the profiling-never-touches-
//! numerics guarantee extends to the metrics plane (asserted by
//! `tests/serve_invariance.rs`). When disabled the per-batch cost is one
//! relaxed load, mirroring the `axnn_obs::enabled()` discipline — that
//! off/on delta is what the `metrics_overhead_pct` bench phase measures.
//!
//! ## Time
//!
//! All window timestamps are milliseconds since the plane was constructed
//! (`Instant`-based, monotonic); trace records carry the same offset so a
//! tail reader can order records across replicas without trusting the wall
//! clock.

use crate::protocol::{json_f64, json_string};
use axnn_obs::{CounterWindow, Hist, HistWindow, WindowSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version of the `{"cmd": "metrics"}` snapshot schema (bumped on any
/// key-set change, like the RunProfile's `schema_version`).
pub const METRICS_SCHEMA_VERSION: u64 = 2;

/// Capacity of the per-server trace ring: old records are evicted in FIFO
/// order once this many are held.
pub const TRACE_RING_CAPACITY: usize = 512;

/// How many trace records `{"cmd": "trace"}` returns when `n` is absent.
pub const TRACE_DEFAULT_N: usize = 32;

/// One served request's compact trace: where it waited, which batch and
/// replica carried it, and how the compute span broke down.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Server-assigned trace id, drawn under the queue mutex at admission
    /// (monotonic in admission order across the whole server; rejected
    /// requests never consume one, so the id space is dense).
    pub trace_id: u64,
    /// Client-chosen request id (the protocol `id` field).
    pub request_id: u64,
    /// Admission timestamp, milliseconds since server start.
    pub admitted_ms: f64,
    /// Time spent queued before its batch was cut, microseconds.
    pub queue_us: f64,
    /// Wall-clock of the batch forward pass it rode in, microseconds.
    pub compute_us: f64,
    /// Server-wide micro-batch sequence number.
    pub batch_id: u64,
    /// Size of that micro-batch.
    pub batch_size: usize,
    /// Replica worker that cut the batch.
    pub replica: usize,
    /// True when the batch ran entirely on cached execution plans (no
    /// compile miss); false on a miss or on the interpreter fallback.
    pub plan_cache_hit: bool,
}

impl TraceRecord {
    /// One-line JSON object (hand-written emitter, fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\": {}, \"request_id\": {}, \"admitted_ms\": {}, \
             \"queue_us\": {}, \"compute_us\": {}, \"batch_id\": {}, \
             \"batch_size\": {}, \"replica\": {}, \"plan_cache_hit\": {}}}",
            self.trace_id,
            self.request_id,
            json_f64(self.admitted_ms),
            json_f64(self.queue_us),
            json_f64(self.compute_us),
            self.batch_id,
            self.batch_size,
            self.replica,
            self.plan_cache_hit,
        )
    }
}

/// What a worker reports for one completed micro-batch; `jobs` holds the
/// per-request slice in batch order.
pub struct BatchObservation<'a> {
    /// Replica worker that cut the batch.
    pub replica: usize,
    /// Wall-clock of the forward pass, microseconds.
    pub compute_us: f64,
    /// Plan-cache hits this batch contributed (delta, not total).
    pub plan_cache_hits: u64,
    /// Plan-cache misses this batch contributed (delta, not total).
    pub plan_cache_misses: u64,
    /// Per-request admission data, in batch order.
    pub jobs: &'a [JobObservation],
}

/// Per-request slice of a [`BatchObservation`].
pub struct JobObservation {
    /// Trace id assigned at admission.
    pub trace_id: u64,
    /// Client request id.
    pub request_id: u64,
    /// Admission timestamp, milliseconds since server start.
    pub admitted_ms: f64,
    /// Queue wait, microseconds.
    pub queue_us: f64,
}

/// Sliding-window state guarded by one mutex (locked once per batch).
struct WindowsInner {
    queue_wait_us: HistWindow,
    compute_us: HistWindow,
    /// Server-side raw-frame preprocessing time; recorded per `raw_frame`
    /// request on the connection thread, before micro-batching.
    preprocess_us: HistWindow,
    batch_size: HistWindow,
    ok: CounterWindow,
    rejected: CounterWindow,
    /// Per replica: batches cut, plan-cache hits, plan-cache misses.
    per_replica: Vec<(CounterWindow, CounterWindow, CounterWindow)>,
}

/// Cumulative totals + sliding windows + the trace ring. One per server.
pub struct MetricsPlane {
    start: Instant,
    enabled: AtomicBool,
    /// Next trace id minus one (ids start at 1; 0 means "never assigned").
    trace_seq: AtomicU64,
    /// Next batch id minus one.
    batch_seq: AtomicU64,
    ok_total: AtomicU64,
    rejected_total: AtomicU64,
    batches_total: Vec<AtomicU64>,
    pc_hits_total: Vec<AtomicU64>,
    pc_misses_total: Vec<AtomicU64>,
    windows: Mutex<WindowsInner>,
    traces: Mutex<VecDeque<TraceRecord>>,
}

/// Poison-tolerant lock (the `axnn_obs` registry discipline): a panicking
/// reader must not take the metrics plane down with it.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsPlane {
    /// A fresh plane for `replicas` workers, windowed by `window` (the
    /// server uses [`WindowSpec::serve`]: last 10 s at 1 s slots). Enabled
    /// by default.
    pub fn new(replicas: usize, window: WindowSpec) -> Self {
        let hist = |spec| HistWindow::new(window, spec);
        MetricsPlane {
            start: Instant::now(),
            enabled: AtomicBool::new(true),
            trace_seq: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            ok_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            batches_total: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            pc_hits_total: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            pc_misses_total: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            windows: Mutex::new(WindowsInner {
                queue_wait_us: hist(crate::server::queue_wait_spec()),
                compute_us: hist(crate::server::compute_spec()),
                preprocess_us: hist(crate::server::preprocess_time_spec()),
                batch_size: hist(crate::server::batch_size_spec()),
                ok: CounterWindow::new(window),
                rejected: CounterWindow::new(window),
                per_replica: (0..replicas)
                    .map(|_| {
                        (
                            CounterWindow::new(window),
                            CounterWindow::new(window),
                            CounterWindow::new(window),
                        )
                    })
                    .collect(),
            }),
            traces: Mutex::new(VecDeque::with_capacity(TRACE_RING_CAPACITY)),
        }
    }

    /// Whether recording is on (one relaxed load — the disabled-path cost).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Snapshot commands keep answering either
    /// way; only the per-batch recording stops.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Milliseconds since the plane was constructed.
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Millisecond offset of `t` relative to server start (0 when `t`
    /// precedes it, which cannot happen for admission timestamps).
    pub fn offset_ms(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.start).as_secs_f64() * 1e3
    }

    /// The server-wide trace-id sequence. Ids are drawn from it inside
    /// [`crate::queue::BatchQueue::push`] while the queue mutex is held,
    /// so they are monotonic in admission order; the sequence advances
    /// even when recording is off, keeping ids monotonic across toggles.
    pub fn trace_seq(&self) -> &AtomicU64 {
        &self.trace_seq
    }

    /// Records one admission-control rejection.
    pub fn note_rejected(&self) {
        if !self.enabled() {
            return;
        }
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
        lock(&self.windows).rejected.add(self.now_ms(), 1);
    }

    /// Records one server-side raw-frame preprocessing duration. Runs on
    /// the connection thread (one short lock per raw-frame request); the
    /// batching path never calls it, so tensor requests stay lock-free
    /// here.
    pub fn note_preprocess(&self, us: f64) {
        if !self.enabled() {
            return;
        }
        lock(&self.windows).preprocess_us.record(self.now_ms(), us);
    }

    /// Records one completed micro-batch and returns its batch id. The
    /// batch id is assigned even when recording is off (it sequences
    /// hot-swap and trace reasoning), but windows, totals and the trace
    /// ring are only touched when enabled.
    pub fn note_batch(&self, obs: &BatchObservation<'_>) -> u64 {
        let batch_id = self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled() {
            return batch_id;
        }
        let now = self.now_ms();
        let size = obs.jobs.len();
        self.ok_total.fetch_add(size as u64, Ordering::Relaxed);
        if let Some(b) = self.batches_total.get(obs.replica) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(h) = self.pc_hits_total.get(obs.replica) {
            h.fetch_add(obs.plan_cache_hits, Ordering::Relaxed);
        }
        if let Some(m) = self.pc_misses_total.get(obs.replica) {
            m.fetch_add(obs.plan_cache_misses, Ordering::Relaxed);
        }
        {
            let mut w = lock(&self.windows);
            for job in obs.jobs {
                w.queue_wait_us.record(now, job.queue_us);
            }
            w.compute_us.record(now, obs.compute_us);
            w.batch_size.record(now, size as f64);
            w.ok.add(now, size as u64);
            if let Some((batches, hits, misses)) = w.per_replica.get_mut(obs.replica) {
                batches.add(now, 1);
                hits.add(now, obs.plan_cache_hits);
                misses.add(now, obs.plan_cache_misses);
            }
        }
        let hit = obs.plan_cache_misses == 0 && obs.plan_cache_hits > 0;
        let mut ring = lock(&self.traces);
        for job in obs.jobs {
            if ring.len() == TRACE_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(TraceRecord {
                trace_id: job.trace_id,
                request_id: job.request_id,
                admitted_ms: job.admitted_ms,
                queue_us: job.queue_us,
                compute_us: obs.compute_us,
                batch_id,
                batch_size: size,
                replica: obs.replica,
                plan_cache_hit: hit,
            });
        }
        batch_id
    }

    /// The last `n` trace records, oldest first. The ring is ordered by
    /// batch *completion*: with several replicas, a later-admitted batch
    /// can finish (and be recorded) first, so trace ids are only strictly
    /// increasing within one batch's contiguous run of records, not
    /// globally.
    pub fn last_traces(&self, n: usize) -> Vec<TraceRecord> {
        let ring = lock(&self.traces);
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The `{"cmd": "trace"}` response body: the last `n` records oldest
    /// first, plus the ring's bounds so readers can size their own tails.
    pub fn trace_json(&self, n: usize) -> String {
        let records = self.last_traces(n);
        let mut out = format!(
            "{{\"status\": \"trace\", \"count\": {}, \"capacity\": {TRACE_RING_CAPACITY}, \
             \"last_trace_id\": {}, \"traces\": [",
            records.len(),
            self.trace_seq.load(Ordering::Relaxed),
        );
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }

    /// The `{"cmd": "metrics"}` JSON snapshot: schema-versioned, fixed key
    /// order, cumulative totals plus the sliding-window view plus the
    /// cumulative `axnn-obs` health hists.
    pub fn snapshot_json(&self, ctx: &SnapshotContext) -> String {
        let now = self.now_ms();
        let uptime = now.max(1);
        // One lock, merged copies out, lock released before formatting.
        let (queue_wait, compute, preprocess, batch_size, ok_w, rej_w, per_replica) = {
            let w = lock(&self.windows);
            let covered = w.ok.window().covered_millis(uptime);
            let per: Vec<(u64, u64, u64)> = w
                .per_replica
                .iter()
                .map(|(b, h, m)| (b.total(now), h.total(now), m.total(now)))
                .collect();
            (
                w.queue_wait_us.merged(now),
                w.compute_us.merged(now),
                w.preprocess_us.merged(now),
                w.batch_size.merged(now),
                (w.ok.total(now), covered),
                w.rejected.total(now),
                per,
            )
        };
        let (ok_in_window, covered_ms) = ok_w;
        let rps = ok_in_window as f64 * 1e3 / covered_ms as f64;
        let reject_rps = rej_w as f64 * 1e3 / covered_ms as f64;
        let mut out = format!(
            "{{\"status\": \"metrics\", \"schema_version\": {METRICS_SCHEMA_VERSION}, \
             \"uptime_ms\": {now}, \"enabled\": {}, \"replicas\": {}, \
             \"generation\": {}, \"draining\": {}, \"totals\": {{\"ok\": {}, \
             \"rejected\": {}, \"batches\": {}, \"last_trace_id\": {}}}",
            self.enabled(),
            ctx.replicas,
            ctx.generation,
            ctx.draining,
            self.ok_total.load(Ordering::Relaxed),
            self.rejected_total.load(Ordering::Relaxed),
            self.batch_seq.load(Ordering::Relaxed),
            self.trace_seq.load(Ordering::Relaxed),
        );
        out.push_str(&format!(
            ", \"window\": {{\"covered_ms\": {covered_ms}, \"ok\": {ok_in_window}, \
             \"rejected\": {rej_w}, \"rps\": {}, \"reject_rps\": {}, \
             \"queue_wait_us\": {}, \"compute_us\": {}, \"preprocess_us\": {}, \
             \"batch_size\": {}, \"per_replica\": [",
            json_f64(rps),
            json_f64(reject_rps),
            hist_summary_json(&queue_wait),
            hist_summary_json(&compute),
            hist_summary_json(&preprocess),
            hist_summary_json(&batch_size),
        ));
        for (i, (batches, hits, misses)) in per_replica.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let ratio = if hits + misses > 0 {
                *hits as f64 / (hits + misses) as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{{\"replica\": {i}, \"batches\": {batches}, \"plan_cache_hits\": {hits}, \
                 \"plan_cache_misses\": {misses}, \"plan_cache_hit_ratio\": {}}}",
                json_f64(ratio),
            ));
        }
        out.push_str("]}, \"totals_per_replica\": [");
        for i in 0..self.batches_total.len() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"replica\": {i}, \"batches\": {}, \"plan_cache_hits\": {}, \
                 \"plan_cache_misses\": {}}}",
                self.batches_total[i].load(Ordering::Relaxed),
                self.pc_hits_total[i].load(Ordering::Relaxed),
                self.pc_misses_total[i].load(Ordering::Relaxed),
            ));
        }
        // Numeric-health hists are cumulative (the proxsim executors record
        // them process-globally); the sliding windows cover the serving-path
        // quantities the plane itself observes.
        out.push_str("], \"health\": [");
        for (i, (name, h)) in axnn_obs::hists_with_prefix("").iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, {}",
                json_string(name),
                &hist_summary_json(h)[1..],
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `format=prometheus` variant: the text exposition wrapped in a
    /// JSON envelope (`{"status": "metrics", "format": "prometheus",
    /// "text": ...}`) so the wire framing stays uniform; scrapers unwrap
    /// one string field.
    pub fn prometheus_json(&self, ctx: &SnapshotContext) -> String {
        let now = self.now_ms();
        let uptime = now.max(1);
        let (queue_wait, compute, preprocess, ok_w, rej_w, covered, per_replica) = {
            let w = lock(&self.windows);
            let covered = w.ok.window().covered_millis(uptime);
            let per: Vec<(u64, u64, u64)> = w
                .per_replica
                .iter()
                .map(|(b, h, m)| (b.total(now), h.total(now), m.total(now)))
                .collect();
            (
                w.queue_wait_us.merged(now),
                w.compute_us.merged(now),
                w.preprocess_us.merged(now),
                w.ok.total(now),
                w.rejected.total(now),
                covered,
                per,
            )
        };
        let mut text = String::new();
        let gauge = |t: &mut String, name: &str, help: &str, v: String| {
            t.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            &mut text,
            "axnn_serve_uptime_ms",
            "Milliseconds since server start.",
            format!("{now}"),
        );
        gauge(
            &mut text,
            "axnn_serve_requests_ok_total",
            "Requests served since start.",
            format!("{}", self.ok_total.load(Ordering::Relaxed)),
        );
        gauge(
            &mut text,
            "axnn_serve_requests_rejected_total",
            "Requests rejected by admission control since start.",
            format!("{}", self.rejected_total.load(Ordering::Relaxed)),
        );
        gauge(
            &mut text,
            "axnn_serve_generation",
            "Completed hot-swap count.",
            format!("{}", ctx.generation),
        );
        gauge(
            &mut text,
            "axnn_serve_window_rps",
            "Served requests per second over the sliding window.",
            json_f64(ok_w as f64 * 1e3 / covered as f64),
        );
        gauge(
            &mut text,
            "axnn_serve_window_reject_rps",
            "Rejections per second over the sliding window.",
            json_f64(rej_w as f64 * 1e3 / covered as f64),
        );
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            text.push_str(&format!(
                "axnn_serve_window_queue_wait_us{{quantile=\"{label}\"}} {}\n",
                json_f64(queue_wait.quantile(q)),
            ));
            text.push_str(&format!(
                "axnn_serve_window_compute_us{{quantile=\"{label}\"}} {}\n",
                json_f64(compute.quantile(q)),
            ));
            text.push_str(&format!(
                "axnn_serve_window_preprocess_us{{quantile=\"{label}\"}} {}\n",
                json_f64(preprocess.quantile(q)),
            ));
        }
        for (i, (batches, hits, misses)) in per_replica.iter().enumerate() {
            text.push_str(&format!(
                "axnn_serve_window_replica_batches{{replica=\"{i}\"}} {batches}\n"
            ));
            text.push_str(&format!(
                "axnn_serve_window_plan_cache_hits{{replica=\"{i}\"}} {hits}\n"
            ));
            text.push_str(&format!(
                "axnn_serve_window_plan_cache_misses{{replica=\"{i}\"}} {misses}\n"
            ));
        }
        format!(
            "{{\"status\": \"metrics\", \"format\": \"prometheus\", \"text\": {}}}",
            json_string(&text),
        )
    }
}

/// Server-level facts the snapshot reports but the plane does not own.
pub struct SnapshotContext {
    /// Replica worker count.
    pub replicas: usize,
    /// Completed hot-swap count.
    pub generation: u64,
    /// True once a graceful drain has begun.
    pub draining: bool,
}

/// Summary object for one merged window hist: count, mean, p50/p99, min,
/// max (fixed key order).
fn hist_summary_json(h: &Hist) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
        h.count(),
        json_f64(h.mean()),
        json_f64(h.quantile(0.5)),
        json_f64(h.quantile(0.99)),
        json_f64(h.min()),
        json_f64(h.max()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_obs::json::JsonValue;

    fn obs(trace_base: u64, replica: usize, n: usize) -> (Vec<JobObservation>, u64) {
        let jobs: Vec<JobObservation> = (0..n)
            .map(|i| JobObservation {
                trace_id: trace_base + i as u64,
                request_id: 100 + i as u64,
                admitted_ms: 1.0 + i as f64,
                queue_us: 50.0 * (i as f64 + 1.0),
            })
            .collect();
        (jobs, replica as u64)
    }

    #[test]
    fn trace_ring_is_bounded_and_ordered() {
        let plane = MetricsPlane::new(1, WindowSpec::new(4, 250));
        let mut next = 1u64;
        for _ in 0..(TRACE_RING_CAPACITY / 4 + 10) {
            let (jobs, _) = obs(next, 0, 4);
            next += 4;
            plane.note_batch(&BatchObservation {
                replica: 0,
                compute_us: 900.0,
                plan_cache_hits: 1,
                plan_cache_misses: 0,
                jobs: &jobs,
            });
        }
        let all = plane.last_traces(usize::MAX);
        assert_eq!(all.len(), TRACE_RING_CAPACITY);
        for pair in all.windows(2) {
            assert!(pair[0].trace_id < pair[1].trace_id, "ring stays ordered");
        }
        // The tail really is the tail.
        let tail = plane.last_traces(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[2].trace_id, next - 1);
        assert!(tail.iter().all(|r| r.plan_cache_hit));
    }

    #[test]
    fn disabled_plane_still_sequences_but_records_nothing() {
        let plane = MetricsPlane::new(1, WindowSpec::serve());
        plane.set_enabled(false);
        let (jobs, _) = obs(1, 0, 2);
        let id1 = plane.note_batch(&BatchObservation {
            replica: 0,
            compute_us: 10.0,
            plan_cache_hits: 0,
            plan_cache_misses: 1,
            jobs: &jobs,
        });
        plane.note_rejected();
        let id2 = plane.note_batch(&BatchObservation {
            replica: 0,
            compute_us: 10.0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            jobs: &jobs,
        });
        assert_eq!((id1, id2), (1, 2), "batch ids keep sequencing");
        assert!(plane.last_traces(10).is_empty());
        let ctx = SnapshotContext {
            replicas: 1,
            generation: 0,
            draining: false,
        };
        let doc = JsonValue::parse(plane.snapshot_json(&ctx).as_bytes()).unwrap();
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("ok").unwrap().as_u64(), Some(0));
        assert_eq!(totals.get("rejected").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("enabled").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn snapshot_json_parses_with_expected_sections() {
        let plane = MetricsPlane::new(2, WindowSpec::serve());
        for replica in 0..2 {
            let (jobs, _) = obs(1 + replica as u64 * 3, replica, 3);
            plane.note_batch(&BatchObservation {
                replica,
                compute_us: 1200.0,
                plan_cache_hits: 1,
                plan_cache_misses: 1,
                jobs: &jobs,
            });
        }
        plane.note_rejected();
        plane.note_preprocess(350.0);
        plane.note_preprocess(650.0);
        let ctx = SnapshotContext {
            replicas: 2,
            generation: 3,
            draining: true,
        };
        let doc = JsonValue::parse(plane.snapshot_json(&ctx).as_bytes()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(METRICS_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("draining").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("generation").unwrap().as_u64(), Some(3));
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("ok").unwrap().as_u64(), Some(6));
        assert_eq!(totals.get("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(totals.get("batches").unwrap().as_u64(), Some(2));
        let window = doc.get("window").unwrap();
        assert!(window.get("rps").unwrap().as_f64().unwrap() > 0.0);
        let per = window.get("per_replica").unwrap().as_array().unwrap();
        assert_eq!(per.len(), 2);
        assert_eq!(per[1].get("batches").unwrap().as_u64(), Some(1));
        assert_eq!(
            per[0].get("plan_cache_hit_ratio").unwrap().as_f64(),
            Some(0.5)
        );
        let qw = window.get("queue_wait_us").unwrap();
        assert_eq!(qw.get("count").unwrap().as_u64(), Some(6));
        assert!(
            qw.get("p99").unwrap().as_f64().unwrap() >= qw.get("p50").unwrap().as_f64().unwrap()
        );
        let pp = window.get("preprocess_us").unwrap();
        assert_eq!(pp.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(pp.get("mean").unwrap().as_f64(), Some(500.0));
        assert!(doc.get("health").unwrap().as_array().is_some());
    }

    #[test]
    fn trace_json_is_well_formed() {
        let plane = MetricsPlane::new(1, WindowSpec::serve());
        let (jobs, _) = obs(1, 0, 2);
        plane.note_batch(&BatchObservation {
            replica: 0,
            compute_us: 800.0,
            plan_cache_hits: 0,
            plan_cache_misses: 2,
            jobs: &jobs,
        });
        let doc = JsonValue::parse(plane.trace_json(8).as_bytes()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("trace"));
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(2));
        let traces = doc.get("traces").unwrap().as_array().unwrap();
        assert_eq!(traces.len(), 2);
        let t = &traces[1];
        assert_eq!(t.get("trace_id").unwrap().as_u64(), Some(2));
        assert_eq!(t.get("request_id").unwrap().as_u64(), Some(101));
        assert_eq!(t.get("batch_id").unwrap().as_u64(), Some(1));
        assert_eq!(t.get("batch_size").unwrap().as_u64(), Some(2));
        assert_eq!(t.get("plan_cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(t.get("compute_us").unwrap().as_f64(), Some(800.0));
    }

    #[test]
    fn prometheus_text_exposes_core_series() {
        let plane = MetricsPlane::new(1, WindowSpec::serve());
        let (jobs, _) = obs(1, 0, 4);
        plane.note_batch(&BatchObservation {
            replica: 0,
            compute_us: 700.0,
            plan_cache_hits: 1,
            plan_cache_misses: 0,
            jobs: &jobs,
        });
        let ctx = SnapshotContext {
            replicas: 1,
            generation: 0,
            draining: false,
        };
        let doc = JsonValue::parse(plane.prometheus_json(&ctx).as_bytes()).unwrap();
        assert_eq!(doc.get("format").unwrap().as_str(), Some("prometheus"));
        let text = doc.get("text").unwrap().as_str().unwrap().to_string();
        assert!(text.contains("axnn_serve_requests_ok_total 4"));
        assert!(text.contains("axnn_serve_window_rps "));
        assert!(text.contains("axnn_serve_window_queue_wait_us{quantile=\"0.99\"}"));
        assert!(text.contains("axnn_serve_window_preprocess_us{quantile=\"0.5\"}"));
        assert!(text.contains("axnn_serve_window_replica_batches{replica=\"0\"} 1"));
    }
}
