//! The executor families a serving process can run a checkpoint under.

use std::fmt;
use std::str::FromStr;

/// Which executor family the served network's GEMM cores use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeExecutor {
    /// Exact f32 GEMM (the `axnn evaluate` reference path).
    Exact,
    /// 8-bit-activation / 4-bit-weight quantized GEMM.
    Quant,
    /// LUT-served approximate-multiplier GEMM.
    Approx,
}

impl ServeExecutor {
    /// All families, in benchmark-matrix order.
    pub const ALL: [ServeExecutor; 3] = [
        ServeExecutor::Exact,
        ServeExecutor::Quant,
        ServeExecutor::Approx,
    ];

    /// The lowercase name used on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            ServeExecutor::Exact => "exact",
            ServeExecutor::Quant => "quant",
            ServeExecutor::Approx => "approx",
        }
    }
}

impl fmt::Display for ServeExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ServeExecutor {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(ServeExecutor::Exact),
            "quant" => Ok(ServeExecutor::Quant),
            "approx" => Ok(ServeExecutor::Approx),
            other => Err(format!(
                "unknown executor '{other}' (use exact|quant|approx)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for e in ServeExecutor::ALL {
            assert_eq!(e.name().parse::<ServeExecutor>().unwrap(), e);
        }
        assert!("fp16".parse::<ServeExecutor>().is_err());
    }
}
