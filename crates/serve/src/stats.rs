//! Latency summaries for the load generator and the bench harness.

/// Nearest-rank percentile over an already **sorted** slice: the smallest
/// sample such that at least `p`% of the distribution is ≤ it (the
/// convention the workspace reports use — no interpolation, every quoted
/// latency is one that actually happened).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// p50/p95/p99 + moments of one latency population, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
    /// Worst observed sample, microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a sample population (consumes and sorts it).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let count = samples.len();
        let mean_us = samples.iter().sum::<f64>() / count as f64;
        LatencySummary {
            count,
            p50_us: percentile_sorted(&samples, 50.0),
            p95_us: percentile_sorted(&samples, 95.0),
            p99_us: percentile_sorted(&samples, 99.0),
            mean_us,
            max_us: samples[count - 1],
        }
    }

    /// The summary's fields as hand-written JSON members (no braces), for
    /// embedding into a larger object.
    pub fn json_members(&self) -> String {
        format!(
            "\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {}, \"max_us\": {}",
            self.count,
            fmt_f64(self.p50_us),
            fmt_f64(self.p95_us),
            fmt_f64(self.p99_us),
            fmt_f64(self.mean_us),
            fmt_f64(self.max_us),
        )
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_is_all_zeros() {
        assert_eq!(LatencySummary::from_samples(Vec::new()).count, 0);
    }

    #[test]
    fn nearest_rank_on_a_known_population() {
        // 1..=100: nearest-rank pX is exactly X.
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert_eq!(s.mean_us, 50.5);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let s = LatencySummary::from_samples(vec![7.5]);
        assert_eq!(
            (s.p50_us, s.p95_us, s.p99_us, s.max_us),
            (7.5, 7.5, 7.5, 7.5)
        );
    }

    #[test]
    fn percentile_p0_and_p100_hit_the_extremes() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        // p=0 rounds its rank of 0 up to the first sample (nearest-rank
        // percentiles are always real samples, never an extrapolation)...
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        // ...and p=100 is exactly the max, never past the end.
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        // Out-of-range p stays clamped to the population.
        assert_eq!(percentile_sorted(&sorted, 250.0), 4.0);
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_single_sample_answers_every_p() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&[42.0], p), 42.0, "p={p}");
        }
    }

    #[test]
    fn percentile_duplicates_do_not_skew_the_rank() {
        // Eight duplicates then two outliers: p50 must sit in the
        // duplicate mass, p95/p100 on the outliers.
        let sorted = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0, 11.0];
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 80.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 90.0), 9.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 11.0);
        let all_same = [3.0; 7];
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&all_same, p), 3.0);
        }
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let s = LatencySummary::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.p50_us, 2.0);
        assert_eq!(s.max_us, 3.0);
    }

    #[test]
    fn json_members_embed_cleanly() {
        let s = LatencySummary::from_samples(vec![1.0, 2.0]);
        let obj = format!("{{{}}}", s.json_members());
        let v = axnn_obs::json::JsonValue::parse(obj.as_bytes()).unwrap();
        assert_eq!(v.get("count").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("max_us").and_then(|x| x.as_f64()), Some(2.0));
    }
}
