//! # axnn-serve
//!
//! A batched TCP inference service for ApproxNN checkpoints, plus the load
//! generator that measures it.
//!
//! The server speaks a length-prefixed JSON protocol ([`protocol`]),
//! admits requests into a globally bounded queue set with explicit
//! `overloaded` rejections ([`queue`]), cuts dynamic micro-batches (flush
//! on max-batch-size or batch-window deadline, whichever first), and runs
//! them on **N replica model workers** behind a least-loaded dispatcher
//! ([`server`]) through any of the three executor families — exact,
//! 8A4W-quantized, or approximate ([`executor`], [`model`]). Every replica
//! is built bit-identically from one shared frozen checkpoint
//! ([`ServeSpec`]) with its own compiled plan cache and scratch arena, so
//! serving keeps the workspace's bit-determinism: the same request returns
//! the same logits whether it is served alone or inside a batch, at any
//! thread count, on any replica, at any replica count.
//!
//! A running server hot-swaps checkpoints without dropping connections:
//! `{"cmd": "reload", "path": ...}` builds the new replica set off the
//! worker threads, canary-diffs it against the live model, and stages it
//! for each worker to pick up between batches ([`server`] docs).
//!
//! Every stage reports through `axnn-obs` — queue-wait/compute latency
//! splits, batch-size/queue-depth/replica histograms, served/rejected and
//! per-replica plan-cache ratios, swap events — landing in the RunProfile
//! v2 schema so `axnn obs report|diff` work on serving runs unchanged.
//!
//! Requests arrive as pre-shaped tensors or as **raw `H×W×C` frames**
//! (`raw_frame`): the server resizes, re-lays-out and normalizes raw
//! frames with the model's [`PreprocessSpec`] on the connection thread —
//! a pipelined stage before micro-batching — using the *same*
//! `axnn_data::resize` kernels a client would, so server-side
//! preprocessing is bit-identical to client-side ([`stream::probe`]
//! asserts it end to end).
//!
//! [`loadgen`] drives a running server closed-loop (fixed caller
//! population), open-loop (fixed arrival schedule, coordinated-omission
//! corrected), or as a multi-rate open-loop [`loadgen::sweep`] that
//! locates the saturation knee; [`stream`] is the raw-frame analogue — a
//! sustained open-loop frame-rate sweep with per-stage
//! preprocess/queue/compute breakdowns (`results/BENCH_stream.json`);
//! [`bench`] sweeps the executor × batch-config matrix plus the
//! replicas-vs-throughput knee into `results/BENCH_serve.json`.
//!
//! ## Minimal session
//!
//! ```text
//! $ axnn serve --checkpoint ckpt.json --port 7878 --executor approx --replicas 4 &
//! $ axnn loadgen --addr 127.0.0.1:7878 --connections 4 --requests 64
//! $ axnn loadgen --addr 127.0.0.1:7878 --reload ckpt_v2.json   # hot-swap
//! ```

pub mod bench;
pub mod executor;
pub mod loadgen;
pub mod metrics;
pub mod model;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
pub mod stream;

pub use axnn_data::resize::{Filter, FrameData, PreprocessSpec, RawFrame};
pub use bench::{run_bench, BenchConfig};
pub use executor::ServeExecutor;
pub use loadgen::{
    canary_probe, probe_input_len, probe_preprocess_spec, reload_server, shutdown_server, Client,
    LoadConfig, LoadReport, SweepConfig, SweepReport,
};
pub use metrics::{MetricsPlane, SnapshotContext, TraceRecord, METRICS_SCHEMA_VERSION};
pub use model::{ModelOptions, ServeSpec, ServedModel};
pub use protocol::{Request, Response, ResponseMsg};
pub use queue::{AdmitError, BatchQueue, Dispatcher, QueueConfig};
pub use server::Server;
pub use stats::LatencySummary;
pub use stream::{StreamConfig, StreamPoint, StreamProbe, StreamReport};

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_models::ModelConfig;
    use axnn_nn::Checkpoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_checkpoint_json(seed: u64) -> String {
        let mut cfg = ModelConfig::paper().with_width(0.2).with_input_hw(8);
        cfg.batch_norm = false;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = axnn_models::resnet20(&cfg, &mut rng);
        Checkpoint::capture(&mut net).to_json()
    }

    fn tiny_spec() -> ServeSpec {
        let opts = ModelOptions {
            width: 0.2,
            hw: 8,
            ..ModelOptions::default()
        };
        ServeSpec::from_json(&tiny_checkpoint_json(3), &opts).unwrap()
    }

    fn tiny_server_at(bind: &str, queue: QueueConfig, replicas: usize) -> Server {
        Server::start(&tiny_spec(), bind, queue, replicas).unwrap()
    }

    fn tiny_server(queue: QueueConfig) -> Server {
        tiny_server_at("127.0.0.1:0", queue, 1)
    }

    #[test]
    fn end_to_end_session_serves_probes_and_drains() {
        let mut server = tiny_server(QueueConfig {
            capacity: 8,
            max_batch: 4,
            batch_window: Duration::from_micros(500),
        });
        let addr = server.addr();
        assert_eq!(probe_input_len(addr).unwrap(), 3 * 8 * 8);

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.command("ping").unwrap().status, "pong");

        let input = vec![0.25f32; server.input_len()];
        let msg = client.infer(11, &input).unwrap();
        assert_eq!((msg.id, msg.status.as_str()), (11, "ok"));
        assert_eq!(msg.logits.len(), server.classes());
        assert!(msg.batch >= 1);
        assert!(msg.compute_us > 0.0);

        // Malformed input length gets a per-request error, not a hangup.
        let msg = client.infer(12, &[1.0, 2.0]).unwrap();
        assert_eq!(msg.status, "error");
        assert!(msg.detail.contains("input length"));

        // Graceful drain: shutdown acks, then new work is refused.
        assert_eq!(client.command("shutdown").unwrap().status, "draining");
        let msg = client.infer(13, &input).unwrap();
        assert_eq!(msg.status, "draining");
        server.join();
    }

    #[test]
    fn metrics_and_trace_serve_live_traffic() {
        let mut server = tiny_server_at(
            "127.0.0.1:0",
            QueueConfig {
                capacity: 16,
                max_batch: 4,
                batch_window: Duration::from_micros(500),
            },
            2,
        );
        let input = vec![0.25f32; server.input_len()];
        let mut client = Client::connect(server.addr()).unwrap();
        for id in 1..=6 {
            assert_eq!(client.infer(id, &input).unwrap().status, "ok");
        }
        let snap = client.metrics(None).unwrap();
        let doc = axnn_obs::json::JsonValue::parse(snap.as_bytes()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(METRICS_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("replicas").unwrap().as_u64(), Some(2));
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("ok").unwrap().as_u64(), Some(6));
        let window = doc.get("window").unwrap();
        assert!(window.get("rps").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            window.get("per_replica").unwrap().as_array().unwrap().len(),
            2
        );

        let tail = client.trace_tail(4).unwrap();
        let doc = axnn_obs::json::JsonValue::parse(tail.as_bytes()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("trace"));
        let traces = doc.get("traces").unwrap().as_array().unwrap();
        assert_eq!(traces.len(), 4);
        let last = traces.last().unwrap();
        assert_eq!(last.get("trace_id").unwrap().as_u64(), Some(6));
        assert_eq!(last.get("request_id").unwrap().as_u64(), Some(6));
        assert!(last.get("compute_us").unwrap().as_f64().unwrap() > 0.0);

        // Prometheus exposition rides the same framing.
        let prom = client.metrics(Some("prometheus")).unwrap();
        assert!(prom.contains("axnn_serve_requests_ok_total"));
        // An unknown format is a per-request error, not a hangup.
        assert!(client.metrics(Some("xml")).is_err());
        assert_eq!(client.command("ping").unwrap().status, "pong");
        server.shutdown();
    }

    #[test]
    fn draining_server_still_answers_metrics_and_trace() {
        let mut server = tiny_server(QueueConfig {
            capacity: 8,
            max_batch: 4,
            batch_window: Duration::from_micros(500),
        });
        let input = vec![0.5f32; server.input_len()];
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.infer(1, &input).unwrap().status, "ok");
        assert_eq!(client.command("shutdown").unwrap().status, "draining");
        // Inference is refused now, but the read-only snapshot commands
        // keep answering — they are handled before admission control.
        assert_eq!(client.infer(2, &input).unwrap().status, "draining");
        let snap = client.metrics(None).unwrap();
        let doc = axnn_obs::json::JsonValue::parse(snap.as_bytes()).unwrap();
        assert_eq!(doc.get("draining").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get("totals").unwrap().get("ok").unwrap().as_u64(),
            Some(1)
        );
        let tail = client.trace_tail(8).unwrap();
        let doc = axnn_obs::json::JsonValue::parse(tail.as_bytes()).unwrap();
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(1));
        drop(client);
        server.join();
    }

    #[test]
    fn loadgen_closed_loop_reports_served_traffic() {
        let mut server = tiny_server(QueueConfig {
            capacity: 32,
            max_batch: 4,
            batch_window: Duration::from_micros(500),
        });
        let report = loadgen::run(
            server.addr(),
            server.input_len(),
            &LoadConfig {
                connections: 3,
                requests: 4,
                rate_rps: 0.0,
                seed: 7,
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.sent, 12);
        assert_eq!(report.ok, 12);
        assert_eq!(report.rejected + report.errors, 0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.latency.p99_us >= report.latency.p50_us);
    }

    #[test]
    fn replica_server_serves_and_drains() {
        let mut server = tiny_server_at(
            "127.0.0.1:0",
            QueueConfig {
                capacity: 16,
                max_batch: 2,
                batch_window: Duration::from_micros(200),
            },
            3,
        );
        assert_eq!(server.replicas(), 3);
        let report = loadgen::run(
            server.addr(),
            server.input_len(),
            &LoadConfig {
                connections: 4,
                requests: 6,
                rate_rps: 0.0,
                seed: 11,
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.ok, 24, "every request served across replicas");
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn wildcard_bind_still_drains() {
        // Regression: begin_shutdown used to connect to the bound address
        // verbatim; a 0.0.0.0 bind is not connectable, so the acceptor
        // never woke and shutdown() hung forever.
        let mut server = tiny_server_at("0.0.0.0:0", QueueConfig::default(), 1);
        assert!(server.addr().ip().is_unspecified());
        let loopback =
            std::net::SocketAddr::new("127.0.0.1".parse().unwrap(), server.addr().port());
        let input = vec![0.5f32; server.input_len()];
        let msg = Client::connect(loopback).unwrap().infer(1, &input).unwrap();
        assert_eq!(msg.status, "ok");
        server.shutdown(); // must return, not hang on the acceptor join
    }

    #[test]
    fn hot_swap_keeps_connections_and_changes_the_model() {
        let mut server = tiny_server_at(
            "127.0.0.1:0",
            QueueConfig {
                capacity: 16,
                max_batch: 4,
                batch_window: Duration::from_micros(200),
            },
            2,
        );
        let input = vec![0.25f32; server.input_len()];
        let mut client = Client::connect(server.addr()).unwrap();
        let before = client.infer(1, &input).unwrap();
        assert_eq!(before.status, "ok");

        // Swap in a *different* tiny checkpoint (new init seed) in process.
        let resp = server.reload(&tiny_checkpoint_json(8));
        let msg = ResponseMsg::parse(resp.to_json().as_bytes()).unwrap();
        assert_eq!(msg.status, "reloaded", "{}", msg.detail);
        assert_eq!((msg.generation, msg.replicas), (1, 2));
        assert!(
            msg.max_abs_delta > 0.0,
            "different weights must move the canary"
        );
        assert_eq!(server.generation(), 1);

        // The same connection keeps working and every subsequent request
        // is answered by the new model (stable logits across repeats).
        let after = client.infer(2, &input).unwrap();
        assert_eq!(after.status, "ok");
        let old_bits: Vec<u32> = before.logits.iter().map(|v| v.to_bits()).collect();
        let new_bits: Vec<u32> = after.logits.iter().map(|v| v.to_bits()).collect();
        assert_ne!(old_bits, new_bits, "logits must come from the new model");
        for id in 3..9 {
            let again = client.infer(id, &input).unwrap();
            let bits: Vec<u32> = again.logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, new_bits, "request {id}: replicas disagree post-swap");
        }

        // A reload of a mismatched architecture is rejected, old model keeps
        // serving.
        let mut cfg = ModelConfig::paper().with_width(0.4).with_input_hw(8);
        cfg.batch_norm = false;
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = axnn_models::resnet20(&cfg, &mut rng);
        let wrong = Checkpoint::capture(&mut net).to_json();
        let resp = server.reload(&wrong);
        let msg = ResponseMsg::parse(resp.to_json().as_bytes()).unwrap();
        assert_eq!(msg.status, "error");
        assert_eq!(server.generation(), 1, "failed reload must not bump");
        assert_eq!(client.infer(9, &input).unwrap().status, "ok");
        server.shutdown();
    }

    #[test]
    fn raw_frames_serve_bit_identically_to_local_preprocessing() {
        let mut server = tiny_server_at(
            "127.0.0.1:0",
            QueueConfig {
                capacity: 16,
                max_batch: 4,
                batch_window: Duration::from_micros(300),
            },
            2,
        );
        let addr = server.addr();
        // The published spec matches the served shape.
        let spec = probe_preprocess_spec(addr).unwrap();
        assert_eq!(spec.input_len(), server.input_len());

        // The library probe: one u8 frame needing a downscale (32x48 -> 8x8).
        let verdict = stream::probe(addr, 32, 48, 3, true, 77).unwrap();
        assert!(
            verdict.bit_identical,
            "raw vs tensor diverged by {}",
            verdict.max_abs_delta
        );
        assert_eq!(verdict.classes, server.classes());

        // By hand for the f32 path, plus the per-response preprocess_us
        // split: raw frames report a positive preprocess time, tensor
        // requests report zero.
        let frame = RawFrame::synthetic(16, 16, 3, false, 5);
        let local = spec.apply(&frame).unwrap();
        let mut client = Client::connect(addr).unwrap();
        let raw = client.infer_raw(1, &frame).unwrap();
        assert_eq!(raw.status, "ok", "{}", raw.detail);
        assert!(raw.preprocess_us > 0.0);
        let tensor = client.infer(2, &local).unwrap();
        assert_eq!(tensor.status, "ok");
        assert_eq!(tensor.preprocess_us, 0.0);
        let raw_bits: Vec<u32> = raw.logits.iter().map(|v| v.to_bits()).collect();
        let tensor_bits: Vec<u32> = tensor.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(raw_bits, tensor_bits);

        // Malformed frames get per-request errors, not hangups.
        let mut bad = RawFrame::synthetic(4, 4, 3, true, 1);
        bad.height = 5;
        let msg = client.infer_raw(3, &bad).unwrap();
        assert_eq!(msg.status, "error");
        assert!(msg.detail.contains("expected"), "{}", msg.detail);
        let both = Request::raw_frame_json(4, &frame).replacen(
            "\"raw_frame\"",
            "\"input\": [0.5], \"raw_frame\"",
            1,
        );
        let msg = ResponseMsg::parse(client.raw_round_trip(&both).unwrap().as_slice()).unwrap();
        assert_eq!(msg.status, "error");
        assert!(msg.detail.contains("both"), "{}", msg.detail);

        // The metrics window now carries the preprocess stage.
        let snap = client.metrics(None).unwrap();
        let doc = axnn_obs::json::JsonValue::parse(snap.as_bytes()).unwrap();
        let pp = doc.get("window").unwrap().get("preprocess_us").unwrap();
        assert!(pp.get("count").unwrap().as_u64().unwrap() >= 2);
        server.shutdown();
    }

    #[test]
    fn overload_burst_is_rejected_not_queued() {
        let mut server = tiny_server(QueueConfig {
            capacity: 1,
            max_batch: 1,
            batch_window: Duration::ZERO,
        });
        let report = loadgen::run(
            server.addr(),
            server.input_len(),
            &LoadConfig {
                connections: 8,
                requests: 4,
                rate_rps: 0.0,
                seed: 9,
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.sent, 32);
        assert!(report.rejected > 0, "burst past capacity must be rejected");
        assert_eq!(report.ok + report.rejected, 32, "no silent drops");
        assert!(report.reject_rate > 0.0);
    }
}
