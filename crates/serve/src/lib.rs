//! # axnn-serve
//!
//! A batched TCP inference service for ApproxNN checkpoints, plus the load
//! generator that measures it.
//!
//! The server speaks a length-prefixed JSON protocol ([`protocol`]),
//! admits requests into a bounded queue with explicit `overloaded`
//! rejections ([`queue`]), cuts dynamic micro-batches (flush on
//! max-batch-size or batch-window deadline, whichever first), and runs
//! them on a single model-worker thread ([`server`]) through any of the
//! three executor families — exact, 8A4W-quantized, or approximate
//! ([`executor`], [`model`]). Parallelism lives *inside* the forward pass
//! (`axnn-par`), never across batches, so serving inherits the workspace's
//! bit-determinism: the same request returns the same logits whether it is
//! served alone or inside a batch, at any thread count.
//!
//! Every stage reports through `axnn-obs` — queue-wait/compute latency
//! splits, batch-size and queue-depth histograms, a served/rejected ratio —
//! landing in the RunProfile v2 schema so `axnn obs report|diff` work on
//! serving runs unchanged.
//!
//! [`loadgen`] drives a running server closed-loop (fixed caller
//! population) or open-loop (fixed arrival schedule, coordinated-omission
//! corrected), and [`bench`] sweeps the executor × batch-config matrix
//! into `results/BENCH_serve.json`.
//!
//! ## Minimal session
//!
//! ```text
//! $ axnn serve --checkpoint ckpt.json --port 7878 --executor approx &
//! $ axnn loadgen --addr 127.0.0.1:7878 --connections 4 --requests 64
//! ```

pub mod bench;
pub mod executor;
pub mod loadgen;
pub mod model;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use bench::{run_bench, BenchConfig};
pub use executor::ServeExecutor;
pub use loadgen::{probe_input_len, shutdown_server, Client, LoadConfig, LoadReport};
pub use model::{ModelOptions, ServedModel};
pub use protocol::{Request, Response, ResponseMsg};
pub use queue::{AdmitError, BatchQueue, QueueConfig};
pub use server::Server;
pub use stats::LatencySummary;

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_models::ModelConfig;
    use axnn_nn::Checkpoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_server(queue: QueueConfig) -> Server {
        let mut cfg = ModelConfig::paper().with_width(0.2).with_input_hw(8);
        cfg.batch_norm = false;
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = axnn_models::resnet20(&cfg, &mut rng);
        let json = Checkpoint::capture(&mut net).to_json();
        let opts = ModelOptions {
            width: 0.2,
            hw: 8,
            ..ModelOptions::default()
        };
        let model = ServedModel::from_checkpoint_json(&json, &opts).unwrap();
        Server::start(model, "127.0.0.1:0", queue).unwrap()
    }

    #[test]
    fn end_to_end_session_serves_probes_and_drains() {
        let mut server = tiny_server(QueueConfig {
            capacity: 8,
            max_batch: 4,
            batch_window: Duration::from_micros(500),
        });
        let addr = server.addr();
        assert_eq!(probe_input_len(addr).unwrap(), 3 * 8 * 8);

        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.command("ping").unwrap().status, "pong");

        let input = vec![0.25f32; server.input_len()];
        let msg = client.infer(11, &input).unwrap();
        assert_eq!((msg.id, msg.status.as_str()), (11, "ok"));
        assert_eq!(msg.logits.len(), server.classes());
        assert!(msg.batch >= 1);
        assert!(msg.compute_us > 0.0);

        // Malformed input length gets a per-request error, not a hangup.
        let msg = client.infer(12, &[1.0, 2.0]).unwrap();
        assert_eq!(msg.status, "error");
        assert!(msg.detail.contains("input length"));

        // Graceful drain: shutdown acks, then new work is refused.
        assert_eq!(client.command("shutdown").unwrap().status, "draining");
        let msg = client.infer(13, &input).unwrap();
        assert_eq!(msg.status, "draining");
        server.join();
    }

    #[test]
    fn loadgen_closed_loop_reports_served_traffic() {
        let mut server = tiny_server(QueueConfig {
            capacity: 32,
            max_batch: 4,
            batch_window: Duration::from_micros(500),
        });
        let report = loadgen::run(
            server.addr(),
            server.input_len(),
            &LoadConfig {
                connections: 3,
                requests: 4,
                rate_rps: 0.0,
                seed: 7,
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.sent, 12);
        assert_eq!(report.ok, 12);
        assert_eq!(report.rejected + report.errors, 0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.latency.p99_us >= report.latency.p50_us);
    }

    #[test]
    fn overload_burst_is_rejected_not_queued() {
        let mut server = tiny_server(QueueConfig {
            capacity: 1,
            max_batch: 1,
            batch_window: Duration::ZERO,
        });
        let report = loadgen::run(
            server.addr(),
            server.input_len(),
            &LoadConfig {
                connections: 8,
                requests: 4,
                rate_rps: 0.0,
                seed: 9,
            },
        )
        .unwrap();
        server.shutdown();
        assert_eq!(report.sent, 32);
        assert!(report.rejected > 0, "burst past capacity must be rejected");
        assert_eq!(report.ok + report.rejected, 32, "no silent drops");
        assert!(report.reject_rate > 0.0);
    }
}
