//! The serving benchmark matrix behind `axnn loadgen --bench`.
//!
//! For every requested executor × batch configuration the harness boots an
//! in-process server on an ephemeral port, probes it with a closed-loop
//! phase (throughput under a fixed caller population) and an open-loop
//! phase (latency at 80% of the measured closed-loop throughput), then
//! drains it. Two extra phases complete the picture:
//!
//! - an **overload** phase (queue capacity 1, single-request batches, an
//!   8-way burst) that must provoke `overloaded` rejections — admission
//!   control demonstrably firing, not just configured;
//! - an **obs-overhead** phase that serves the same workload with
//!   observability off and on in interleaved rounds and reports the
//!   relative service-time difference. The compared quantity is the
//!   server-reported **total compute time** per run (Σ `compute_us` over
//!   ok responses) — the instrumented region where the per-layer obs
//!   sites live — rather than client wall-clock, which on a shared box is
//!   dominated by loadgen scheduling noise. Rounds run under the
//!   quiet-window rule (host load here swings ±30%): if the off-rounds
//!   disagree beyond a tolerance the whole round set is re-run, bounded
//!   by a retry budget, and minima are compared — a load spike inflates
//!   individual rounds but not the minimum of an interleaved pair;
//! - a **metrics-overhead** phase that serves the same closed-loop
//!   workload with the serving metrics plane (trace ring + sliding
//!   windows, `{"cmd": "metrics"}`) disabled and enabled in interleaved
//!   rounds. Unlike the obs-overhead phase, the compared quantity is
//!   closed-loop **throughput**: the plane's cost sits *outside* the
//!   forward-pass span (one batch record after compute, before replies),
//!   so Σ `compute_us` cannot see it by construction. The same
//!   quiet-window retry rule applies, and maxima are compared — a load
//!   spike deflates individual rounds but not the maximum of an
//!   interleaved pair;
//! - a **replica sweep** that boots the approx executor at each configured
//!   replica count, estimates the service rate closed-loop, then probes an
//!   open-loop rate ladder around it to locate the saturation knee —
//!   replicas-vs-throughput, the horizontal-scaling record. Replica
//!   speedup is bounded by the host's core count (each replica worker
//!   needs its own core once the forward pass saturates one), so the
//!   document records `host_cores` alongside the knees. The sweep's last
//!   replica count is then re-probed with a live metrics consumer
//!   attached (a poller thread issuing `metrics` + `trace` every few
//!   milliseconds) — the knee-under-observation datapoint.

use crate::executor::ServeExecutor;
use crate::loadgen::{self, LoadConfig, SweepConfig};
use crate::model::{ModelOptions, ServeSpec};
use crate::queue::QueueConfig;
use crate::server::Server;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The benchmark matrix and its budgets.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Executor families to measure.
    pub executors: Vec<ServeExecutor>,
    /// `(max_batch, batch_window_us)` pairs to measure each executor under.
    pub batch_configs: Vec<(usize, u64)>,
    /// Queue capacity for the throughput/latency phases.
    pub queue_cap: usize,
    /// Concurrent loadgen connections.
    pub connections: usize,
    /// Requests per connection per phase.
    pub requests: usize,
    /// Seed for the deterministic request streams.
    pub seed: u64,
    /// Interleaved off/on rounds per obs-overhead attempt.
    pub overhead_rounds: usize,
    /// Quiet-window retries for the obs-overhead measurement.
    pub overhead_retries: usize,
    /// Largest tolerated spread of the off-rounds before a retry, percent.
    pub overhead_spread_tolerance_pct: f64,
    /// Poll period of the attached metrics consumer in the
    /// knee-under-observation probe, milliseconds.
    pub metrics_poll_ms: u64,
    /// Replica counts for the saturation-knee sweep (approx executor).
    pub replica_set: Vec<usize>,
    /// Open-loop rate steps per replica count in the sweep.
    pub sweep_steps: usize,
    /// Wall-clock budget per sweep step, seconds.
    pub sweep_step_duration_s: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            executors: vec![
                ServeExecutor::Exact,
                ServeExecutor::Quant,
                ServeExecutor::Approx,
            ],
            batch_configs: vec![(1, 0), (8, 2000)],
            queue_cap: 64,
            connections: 4,
            requests: 24,
            seed: 1,
            overhead_rounds: 5,
            overhead_retries: 4,
            overhead_spread_tolerance_pct: 30.0,
            metrics_poll_ms: 25,
            replica_set: vec![1, 2, 4],
            sweep_steps: 5,
            sweep_step_duration_s: 1.5,
        }
    }
}

fn start_server(
    checkpoint_json: &str,
    base: &ModelOptions,
    executor: ServeExecutor,
    queue: QueueConfig,
    replicas: usize,
) -> Result<Server, String> {
    let opts = ModelOptions {
        executor,
        ..base.clone()
    };
    let spec = ServeSpec::from_json(checkpoint_json, &opts)?;
    Server::start(&spec, "127.0.0.1:0", queue, replicas).map_err(|e| e.to_string())
}

/// One serving phase: drive the load, propagate transport-level failures.
fn drive(server: &Server, cfg: &LoadConfig) -> Result<loadgen::LoadReport, String> {
    loadgen::run(server.addr(), server.input_len(), cfg).map_err(|e| e.to_string())
}

/// Measures the relative service-time cost of full observability
/// (spans + counters + health) on the serving path, percent. Positive
/// means obs-on was slower. The measured quantity is the server's total
/// compute time for the run (see the module docs for why, and for the
/// quiet-window rule).
fn obs_overhead_pct(
    server: &Server,
    load: &LoadConfig,
    cfg: &BenchConfig,
) -> Result<(f64, usize), String> {
    fn total_compute_us(r: &loadgen::LoadReport) -> f64 {
        r.compute.mean_us * r.compute.count as f64
    }
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut best_off = f64::INFINITY;
        let mut worst_off = 0.0f64;
        let mut best_on = f64::INFINITY;
        for _ in 0..cfg.overhead_rounds {
            axnn_obs::set_enabled(false);
            axnn_obs::set_health_enabled(false);
            let off = total_compute_us(&drive(server, load)?);
            axnn_obs::set_enabled(true);
            axnn_obs::set_health_enabled(true);
            let on = total_compute_us(&drive(server, load)?);
            best_off = best_off.min(off);
            worst_off = worst_off.max(off);
            best_on = best_on.min(on);
        }
        axnn_obs::set_enabled(false);
        axnn_obs::set_health_enabled(false);
        let spread_pct = (worst_off - best_off) / best_off * 100.0;
        if spread_pct <= cfg.overhead_spread_tolerance_pct || attempts > cfg.overhead_retries {
            let overhead = (best_on - best_off) / best_off * 100.0;
            return Ok((overhead, attempts));
        }
    }
}

/// Measures the relative closed-loop throughput cost of the serving
/// metrics plane (per-request trace records + sliding-window aggregation),
/// percent. Positive means plane-on was slower. Throughput is the right
/// probe here: the plane's work happens per batch *outside* the compute
/// span, so the obs-overhead phase's Σ `compute_us` metric is blind to it
/// (see the module docs, and the quiet-window rule there).
fn metrics_overhead_pct(
    server: &Server,
    load: &LoadConfig,
    cfg: &BenchConfig,
) -> Result<(f64, usize), String> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut best_off = 0.0f64;
        let mut worst_off = f64::INFINITY;
        let mut best_on = 0.0f64;
        for _ in 0..cfg.overhead_rounds {
            server.metrics_plane().set_enabled(false);
            let off = drive(server, load)?.throughput_rps;
            server.metrics_plane().set_enabled(true);
            let on = drive(server, load)?.throughput_rps;
            best_off = best_off.max(off);
            worst_off = worst_off.min(off);
            best_on = best_on.max(on);
        }
        let spread_pct = (best_off - worst_off) / best_off * 100.0;
        if spread_pct <= cfg.overhead_spread_tolerance_pct || attempts > cfg.overhead_retries {
            let overhead = (best_off - best_on) / best_off * 100.0;
            return Ok((overhead, attempts));
        }
    }
}

fn fmt(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Runs the full matrix against `checkpoint_json` and returns the
/// `BENCH_serve.json` document. `base.executor` is ignored — the matrix
/// iterates `cfg.executors`.
pub fn run_bench(
    checkpoint_json: &str,
    base: &ModelOptions,
    cfg: &BenchConfig,
) -> Result<String, String> {
    let mut config_objs = Vec::new();
    for &executor in &cfg.executors {
        for &(max_batch, window_us) in &cfg.batch_configs {
            let queue = QueueConfig {
                capacity: cfg.queue_cap,
                max_batch,
                batch_window: Duration::from_micros(window_us),
            };
            let mut server = start_server(checkpoint_json, base, executor, queue, 1)?;
            eprintln!("bench: {executor} max_batch {max_batch} window {window_us} us ...");
            let closed = drive(
                &server,
                &LoadConfig {
                    connections: cfg.connections,
                    requests: cfg.requests,
                    rate_rps: 0.0,
                    seed: cfg.seed,
                },
            )?;
            let open = drive(
                &server,
                &LoadConfig {
                    connections: cfg.connections,
                    requests: cfg.requests,
                    rate_rps: (closed.throughput_rps * 0.8).max(1.0),
                    seed: cfg.seed ^ 0x5eed,
                },
            )?;
            server.shutdown();
            config_objs.push(format!(
                "{{\"executor\": \"{executor}\", \"max_batch\": {max_batch}, \
                 \"batch_window_us\": {window_us}, \"queue_cap\": {}, \
                 \"closed\": {}, \"open\": {}}}",
                cfg.queue_cap,
                closed.to_json(),
                open.to_json(),
            ));
        }
    }

    // Overload phase: capacity 1, single-request batches, an 8-way burst.
    // With ≥ 2 requests in flight per admitted slot, rejections are
    // guaranteed, not probabilistic.
    let first = *cfg.executors.first().unwrap_or(&ServeExecutor::Exact);
    let mut server = start_server(
        checkpoint_json,
        base,
        first,
        QueueConfig {
            capacity: 1,
            max_batch: 1,
            batch_window: Duration::ZERO,
        },
        1,
    )?;
    eprintln!("bench: overload burst ...");
    let overload = drive(
        &server,
        &LoadConfig {
            connections: 8,
            requests: 4,
            rate_rps: 0.0,
            seed: cfg.seed ^ 0x0dd,
        },
    )?;
    server.shutdown();
    if overload.rejected == 0 {
        return Err("overload phase provoked no rejections; admission control untested".into());
    }

    // Obs-overhead phase on the first executor with batching enabled.
    let (max_batch, window_us) = *cfg.batch_configs.last().unwrap_or(&(8, 2000));
    let mut server = start_server(
        checkpoint_json,
        base,
        first,
        QueueConfig {
            capacity: cfg.queue_cap,
            max_batch,
            batch_window: Duration::from_micros(window_us),
        },
        1,
    )?;
    eprintln!("bench: obs overhead ({} rounds) ...", cfg.overhead_rounds);
    axnn_obs::reset();
    let (overhead_pct, attempts) = obs_overhead_pct(
        &server,
        &LoadConfig {
            connections: 2,
            requests: 16,
            rate_rps: 0.0,
            seed: cfg.seed ^ 0x0b5,
        },
        cfg,
    )?;
    // The obs-on rounds populated the registries; capture proves the
    // serving path lands in the v2 profile schema.
    let profile = axnn_obs::RunProfile::capture(&format!("serve/{}/{first}", base.model));

    // Metrics-plane overhead on the same server (axnn-obs is off here, so
    // only the plane toggles between the interleaved rounds).
    eprintln!(
        "bench: metrics-plane overhead ({} rounds) ...",
        cfg.overhead_rounds
    );
    let (metrics_overhead_pct, metrics_attempts) = metrics_overhead_pct(
        &server,
        &LoadConfig {
            connections: 2,
            requests: 16,
            rate_rps: 0.0,
            seed: cfg.seed ^ 0x3e7,
        },
        cfg,
    )?;
    server.shutdown();
    axnn_obs::reset();

    // Replica scaling: for each replica count, estimate the service rate
    // closed-loop, then sweep open-loop rates around it to locate the
    // saturation knee. The approx executor is the deployment target, so it
    // is the one measured. Replica speedup tracks the host's core count —
    // each replica needs a core to run on — so the host parallelism is
    // recorded next to the numbers.
    let mut sweep_entries = Vec::new();
    let mut knee_by_replicas: Vec<(usize, f64)> = Vec::new();
    let sweep_exec = if cfg.executors.contains(&ServeExecutor::Approx) {
        ServeExecutor::Approx
    } else {
        first
    };
    let (max_batch, window_us) = *cfg.batch_configs.last().unwrap_or(&(8, 2000));
    for &replicas in &cfg.replica_set {
        let queue = QueueConfig {
            capacity: cfg.queue_cap,
            max_batch,
            batch_window: Duration::from_micros(window_us),
        };
        let mut server = start_server(checkpoint_json, base, sweep_exec, queue, replicas)?;
        eprintln!("bench: replica sweep ({sweep_exec}, {replicas} replica(s)) ...");
        let closed = drive(
            &server,
            &LoadConfig {
                connections: cfg.connections.max(replicas),
                requests: cfg.requests,
                rate_rps: 0.0,
                seed: cfg.seed ^ 0x4e9,
            },
        )?;
        let sweep = loadgen::sweep(
            server.addr(),
            server.input_len(),
            &SweepConfig {
                connections: cfg.connections.max(replicas),
                rates: loadgen::rate_ladder(closed.throughput_rps.max(1.0), cfg.sweep_steps),
                step_duration_s: cfg.sweep_step_duration_s,
                seed: cfg.seed ^ 0x5733b,
                keepup_ratio: 0.9,
            },
        )
        .map_err(|e| e.to_string())?;
        server.shutdown();
        knee_by_replicas.push((replicas, sweep.knee_throughput_rps));
        sweep_entries.push(format!(
            "{{\"replicas\": {replicas}, \"closed_rps\": {}, \"sweep\": {}}}",
            fmt(closed.throughput_rps),
            sweep.to_json(),
        ));
    }
    let knee_at = |n: usize| {
        knee_by_replicas
            .iter()
            .find(|(r, _)| *r == n)
            .map(|(_, t)| *t)
    };

    // Knee under observation: rerun the sweep at the largest replica count
    // with a live metrics consumer attached — a poller thread issuing the
    // `metrics` and `trace` protocol commands every `metrics_poll_ms`.
    // Observation must not collapse the saturation knee.
    let obs_replicas = *cfg.replica_set.last().unwrap_or(&1);
    let mut server = start_server(
        checkpoint_json,
        base,
        sweep_exec,
        QueueConfig {
            capacity: cfg.queue_cap,
            max_batch,
            batch_window: Duration::from_micros(window_us),
        },
        obs_replicas,
    )?;
    eprintln!("bench: knee with metrics poller attached ({obs_replicas} replica(s)) ...");
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        let addr = server.addr();
        let poll = Duration::from_millis(cfg.metrics_poll_ms.max(1));
        std::thread::spawn(move || {
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut client) = loadgen::Client::connect(addr) {
                    if client.metrics(None).is_ok() && client.trace_tail(8).is_ok() {
                        polls += 1;
                    }
                }
                std::thread::sleep(poll);
            }
            polls
        })
    };
    let closed = drive(
        &server,
        &LoadConfig {
            connections: cfg.connections.max(obs_replicas),
            requests: cfg.requests,
            rate_rps: 0.0,
            seed: cfg.seed ^ 0x4e9,
        },
    )?;
    let observed_sweep = loadgen::sweep(
        server.addr(),
        server.input_len(),
        &SweepConfig {
            connections: cfg.connections.max(obs_replicas),
            rates: loadgen::rate_ladder(closed.throughput_rps.max(1.0), cfg.sweep_steps),
            step_duration_s: cfg.sweep_step_duration_s,
            seed: cfg.seed ^ 0x5733b,
            keepup_ratio: 0.9,
        },
    )
    .map_err(|e| e.to_string())?;
    stop.store(true, Ordering::Relaxed);
    let metrics_polls = poller.join().unwrap_or(0);
    server.shutdown();
    if metrics_polls == 0 {
        return Err(
            "knee probe's metrics poller completed no polls; metrics plane untested".into(),
        );
    }
    let speedup = match (knee_at(1), knee_by_replicas.last()) {
        (Some(base_knee), Some((_, best))) if base_knee > 0.0 => best / base_knee,
        _ => 0.0,
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    Ok(format!(
        "{{\n  \"schema\": \"BENCH_serve.v3\",\n  \"model\": \"{}\",\n  \
         \"width\": {},\n  \"hw\": {},\n  \"mult\": \"{}\",\n  \"seed\": {},\n  \
         \"threads\": {},\n  \"configs\": [\n    {}\n  ],\n  \
         \"overload\": {{\"executor\": \"{first}\", \"queue_cap\": 1, \"sent\": {}, \
         \"ok\": {}, \"rejected\": {}, \"reject_rate\": {}}},\n  \
         \"replica_sweep\": {{\"executor\": \"{sweep_exec}\", \"host_cores\": {host_cores}, \
         \"max_batch\": {max_batch}, \"batch_window_us\": {window_us}, \
         \"knee_speedup_max_vs_1\": {}, \"entries\": [\n    {}\n  ]}},\n  \
         \"knee_with_metrics\": {{\"replicas\": {obs_replicas}, \
         \"poll_ms\": {}, \"metrics_polls\": {metrics_polls}, \"knee_rps\": {}, \
         \"knee_plain_rps\": {}}},\n  \
         \"obs_overhead_pct\": {},\n  \"obs_overhead_attempts\": {attempts},\n  \
         \"metrics_overhead_pct\": {},\n  \
         \"metrics_overhead_attempts\": {metrics_attempts},\n  \
         \"obs_profile\": {{\"spans\": {}, \"hists\": {}, \"ratios\": {}, \
         \"plan_cache_hits\": {}, \"plan_cache_misses\": {}}}\n}}\n",
        base.model,
        fmt(base.width as f64),
        base.hw,
        base.mult,
        base.seed,
        axnn_par::num_threads(),
        config_objs.join(",\n    "),
        overload.sent,
        overload.ok,
        overload.rejected,
        fmt(overload.reject_rate),
        fmt(speedup),
        sweep_entries.join(",\n    "),
        cfg.metrics_poll_ms.max(1),
        fmt(observed_sweep.knee_throughput_rps),
        fmt(knee_at(obs_replicas).unwrap_or(0.0)),
        fmt(overhead_pct),
        fmt(metrics_overhead_pct),
        profile.spans.len(),
        profile.hists.len(),
        profile.health.len(),
        profile.counters.plan_cache_hits,
        profile.counters.plan_cache_misses,
    ))
}
