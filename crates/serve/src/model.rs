//! Checkpoint loading and batched inference for the serving path.
//!
//! A [`ServedModel`] restores an `axnn pipeline --save` checkpoint into an
//! architecture-matched network, swaps in the requested executor family
//! (exact / quantized / approximate) and — for the quantizing executors —
//! runs a deterministic calibration pass so the activation steps are
//! *frozen* before the first request. Freezing matters for batch
//! invariance: an uncalibrated quantizing executor falls back to per-batch
//! abs-max activation scaling, which would make a request's logits depend
//! on its batch mates.

use crate::executor::ServeExecutor;
use axnn_data::resize::PreprocessSpec;
use axnn_data::SynthCifar;
use axnn_models::{mobilenet_v2, resnet20, resnet32, ModelConfig};
use axnn_nn::train::calibrate;
use axnn_nn::{Checkpoint, GraphExecutor, Layer, Mode, PlanCacheStats, Sequential};
use axnn_proxsim::approximate_network;
use axnn_quant::{quantize_network, QuantSpec};
use axnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// How to restore and execute a checkpoint.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Architecture name: `resnet20`, `resnet32` or `mobilenetv2`.
    pub model: String,
    /// Width multiplier the checkpoint was trained with.
    pub width: f32,
    /// Input resolution the checkpoint was trained with.
    pub hw: usize,
    /// Executor family to serve with.
    pub executor: ServeExecutor,
    /// Catalogue multiplier id for [`ServeExecutor::Approx`].
    pub mult: String,
    /// Seed for the deterministic calibration split (and the throwaway
    /// initialization the checkpoint immediately overwrites).
    pub seed: u64,
    /// Calibration samples generated for the quantizing executors.
    pub calib_samples: usize,
    /// Serve micro-batches through the compiled graph executor (fused
    /// kernels + per-batch-shape plan cache). Models that cannot be
    /// lowered fall back to the interpreter automatically.
    pub compiled: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            model: "resnet20".to_string(),
            width: 0.25,
            hw: 16,
            executor: ServeExecutor::Exact,
            mult: "trunc5".to_string(),
            seed: 1,
            calib_samples: 64,
            compiled: true,
        }
    }
}

/// Whether the pipeline folds this architecture's batch norm before
/// quantization (mirrors `ModelKind::folds_bn`; the checkpoint of a folded
/// model has no BN buffers, so the serving copy must be built without BN).
fn folds_bn(model: &str) -> bool {
    model != "mobilenetv2"
}

fn build_net(model: &str, cfg: &ModelConfig, rng: &mut StdRng) -> Result<Sequential, String> {
    match model {
        "resnet20" => Ok(resnet20(cfg, rng)),
        "resnet32" => Ok(resnet32(cfg, rng)),
        "mobilenetv2" => Ok(mobilenet_v2(cfg, rng)),
        other => Err(format!(
            "unknown model '{other}' (use resnet20|resnet32|mobilenetv2)"
        )),
    }
}

/// A restored, executor-swapped, calibrated network ready to serve batches.
#[derive(Debug)]
pub struct ServedModel {
    net: Sequential,
    /// The compiled fast path; `None` when compilation was disabled or
    /// the model could not be lowered ([`Self::fallback_reason`]).
    compiled: Option<GraphExecutor>,
    fallback_reason: Option<String>,
    channels: usize,
    hw: usize,
    classes: usize,
    label: String,
    preprocess: PreprocessSpec,
}

impl ServedModel {
    /// Restores `checkpoint_json` (the `axnn pipeline --save` format) under
    /// `opts`, swaps executors and calibrates. Mirrors the `axnn evaluate`
    /// restore path exactly, so the exact-executor logits are bit-identical
    /// to evaluation.
    pub fn from_checkpoint_json(
        checkpoint_json: &str,
        opts: &ModelOptions,
    ) -> Result<Self, String> {
        let ckpt = Checkpoint::from_json(checkpoint_json).map_err(|e| e.to_string())?;
        Self::from_checkpoint(&ckpt, opts)
    }

    /// Restores an in-memory [`Checkpoint`] under `opts` — the JSON-free
    /// core of [`Self::from_checkpoint_json`]. Borrowing the checkpoint
    /// lets replica builds share one parsed copy ([`ServeSpec`]).
    pub fn from_checkpoint(ckpt: &Checkpoint, opts: &ModelOptions) -> Result<Self, String> {
        let mut cfg = ModelConfig::paper()
            .with_width(opts.width)
            .with_input_hw(opts.hw);
        if folds_bn(&opts.model) {
            // The pipeline saves the BN-folded quantized model for the
            // ResNets (same rule as `axnn evaluate`).
            cfg.batch_norm = false;
        }
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xdead);
        let mut net = build_net(&opts.model, &cfg, &mut rng)?;
        ckpt.restore(&mut net).map_err(|e| e.to_string())?;

        match opts.executor {
            ServeExecutor::Exact => {}
            ServeExecutor::Quant => {
                quantize_network(
                    &mut net,
                    QuantSpec::activations_8bit(),
                    QuantSpec::weights_4bit(),
                );
            }
            ServeExecutor::Approx => {
                let spec = axnn_axmul::catalog::by_id(&opts.mult)
                    .ok_or_else(|| format!("unknown multiplier '{}'", opts.mult))?;
                let multiplier = spec.build();
                approximate_network(&mut net, multiplier.as_ref(), None);
            }
        }
        let mut model = ServedModel {
            net,
            compiled: None,
            fallback_reason: None,
            channels: cfg.input_channels,
            hw: opts.hw,
            classes: cfg.classes,
            label: format!("{}/{}", opts.model, opts.executor),
            // Resolved at checkpoint load: raw frames of any H×W×C are
            // resized/normalized into this model's input shape.
            preprocess: PreprocessSpec::for_input(cfg.input_channels, opts.hw),
        };
        if opts.executor != ServeExecutor::Exact {
            // Freeze the activation quantizers on a deterministic synthetic
            // split; without this, batch-dependent abs-max fallbacks would
            // break batch invariance.
            let (calib, _) = SynthCifar::new(opts.hw).generate(opts.calib_samples, 0, opts.seed);
            calibrate(&mut model.net, &calib, 32, 2);
        }
        if opts.compiled {
            // Compile after calibration so the backends bake in the frozen
            // quantizer steps. Compilation folds any live batch norm into
            // the source network, so a later interpreter fallback runs the
            // same folded weights — the two paths stay bit-identical.
            match GraphExecutor::compile(&mut model.net) {
                Ok(exec) => model.compiled = Some(exec),
                Err(e) => model.fallback_reason = Some(e.reason().to_string()),
            }
        }
        Ok(model)
    }

    /// Flattened input length one request must carry (`C*H*W`).
    pub fn input_len(&self) -> usize {
        self.channels * self.hw * self.hw
    }

    /// The preprocessing spec raw-frame requests are resolved with.
    pub fn preprocess_spec(&self) -> &PreprocessSpec {
        &self.preprocess
    }

    /// Number of output classes (logits per request).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `model/executor` label for profiles and reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether micro-batches run through the compiled graph executor.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Why compilation fell back to the interpreter, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback_reason.as_deref()
    }

    /// Plan-cache hit/miss totals of the compiled executor (`None` on the
    /// interpreter fallback). Steady-state traffic re-batches into a small
    /// set of shapes, so after warmup this should be nearly all hits.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.compiled.as_ref().map(|c| c.cache_stats())
    }

    /// Runs one micro-batch in [`Mode::Eval`] and splits the logits back
    /// per request.
    ///
    /// Per-sample outputs are bit-identical whether a request runs alone or
    /// inside a batch: every lowered GEMM column belongs to exactly one
    /// sample and is accumulated in the same k-order regardless of the
    /// batch around it, eval-mode batch norm uses running statistics, and
    /// all quantizer steps are frozen at load time.
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from [`Self::input_len`] — the
    /// server validates lengths at admission.
    pub fn forward_batch(&mut self, inputs: &[&[f32]]) -> Vec<Vec<f32>> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let n = inputs.len();
        let len = self.input_len();
        let mut flat = Vec::with_capacity(n * len);
        for input in inputs {
            assert_eq!(input.len(), len, "input length must be validated upstream");
            flat.extend_from_slice(input);
        }
        let x = Tensor::from_vec(flat, &[n, self.channels, self.hw, self.hw])
            .expect("batch tensor shape");
        let logits = match &mut self.compiled {
            Some(exec) => exec.forward(&x),
            None => self.net.forward(&x, Mode::Eval),
        };
        let cols = logits.shape()[1];
        logits
            .as_slice()
            .chunks(cols)
            .map(|row| row.to_vec())
            .collect()
    }

    /// Logits for the deterministic canary input derived from `seed` — the
    /// reference point the hot-swap health check diffs old vs new models
    /// on. Also warms the batch-1 plan on a compiled model.
    pub fn canary_logits(&mut self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<f32> = (0..self.input_len())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        self.forward_batch(&[&input]).remove(0)
    }
}

/// A recipe for building any number of bit-identical [`ServedModel`]
/// replicas: the parsed checkpoint is shared frozen behind an [`Arc`]
/// (weights are read once, never per replica), while every [`Self::build`]
/// call produces a model with its **own** network, compiled
/// [`GraphExecutor`] plan cache and scratch arena — replicas never contend
/// on mutable state. Restore, calibration and compilation are all
/// seed-deterministic, so two builds of the same spec serve bit-identical
/// logits.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    ckpt: Arc<Checkpoint>,
    opts: ModelOptions,
}

impl ServeSpec {
    /// Parses `checkpoint_json` once and captures the build options.
    pub fn from_json(checkpoint_json: &str, opts: &ModelOptions) -> Result<Self, String> {
        let ckpt = Checkpoint::from_json(checkpoint_json).map_err(|e| e.to_string())?;
        Ok(ServeSpec {
            ckpt: Arc::new(ckpt),
            opts: opts.clone(),
        })
    }

    /// Wraps an already-parsed checkpoint.
    pub fn from_checkpoint(ckpt: Checkpoint, opts: &ModelOptions) -> Self {
        ServeSpec {
            ckpt: Arc::new(ckpt),
            opts: opts.clone(),
        }
    }

    /// The build options the spec was captured with.
    pub fn options(&self) -> &ModelOptions {
        &self.opts
    }

    /// Builds one replica from the shared checkpoint.
    pub fn build(&self) -> Result<ServedModel, String> {
        ServedModel::from_checkpoint(&self.ckpt, &self.opts)
    }

    /// Builds `n` bit-identical replicas.
    pub fn build_replicas(&self, n: usize) -> Result<Vec<ServedModel>, String> {
        (0..n).map(|_| self.build()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_tensor::init;

    /// A tiny untrained checkpoint: enough to exercise restore + executor
    /// swap + calibration without a training run.
    fn tiny_checkpoint(hw: usize, width: f32) -> String {
        let mut cfg = ModelConfig::paper().with_width(width).with_input_hw(hw);
        cfg.batch_norm = false;
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = build_net("resnet20", &cfg, &mut rng).unwrap();
        Checkpoint::capture(&mut net).to_json()
    }

    fn opts(executor: ServeExecutor) -> ModelOptions {
        ModelOptions {
            width: 0.2,
            hw: 8,
            executor,
            calib_samples: 32,
            ..ModelOptions::default()
        }
    }

    #[test]
    fn loads_and_serves_every_executor_family() {
        let ckpt = tiny_checkpoint(8, 0.2);
        for executor in [
            ServeExecutor::Exact,
            ServeExecutor::Quant,
            ServeExecutor::Approx,
        ] {
            let mut model = ServedModel::from_checkpoint_json(&ckpt, &opts(executor)).unwrap();
            assert_eq!(model.input_len(), 3 * 8 * 8);
            let mut rng = StdRng::seed_from_u64(11);
            let x = init::uniform(&[1, model.input_len()], -1.0, 1.0, &mut rng);
            let out = model.forward_batch(&[x.as_slice()]);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].len(), model.classes());
            assert!(out[0].iter().all(|v| v.is_finite()), "{executor}");
        }
    }

    #[test]
    fn compiled_path_matches_interpreter_and_hits_plan_cache() {
        let ckpt = tiny_checkpoint(8, 0.2);
        for executor in [
            ServeExecutor::Exact,
            ServeExecutor::Quant,
            ServeExecutor::Approx,
        ] {
            let mut compiled = ServedModel::from_checkpoint_json(&ckpt, &opts(executor)).unwrap();
            assert!(
                compiled.is_compiled(),
                "{executor} must compile: {:?}",
                compiled.fallback_reason()
            );
            let mut interp_opts = opts(executor);
            interp_opts.compiled = false;
            let mut interp = ServedModel::from_checkpoint_json(&ckpt, &interp_opts).unwrap();
            assert!(!interp.is_compiled());
            assert!(interp.plan_cache_stats().is_none());

            let mut rng = StdRng::seed_from_u64(31);
            let x = init::uniform(&[compiled.input_len()], -1.0, 1.0, &mut rng);
            let a = compiled.forward_batch(&[x.as_slice()]);
            let b = interp.forward_batch(&[x.as_slice()]);
            let ab: Vec<u32> = a[0].iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b[0].iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                ab, bb,
                "{executor}: compiled logits differ from interpreter"
            );

            // A second batch of the same shape must reuse the cached plan.
            compiled.forward_batch(&[x.as_slice()]);
            assert_eq!(
                compiled.plan_cache_stats(),
                Some(PlanCacheStats { hits: 1, misses: 1 }),
                "{executor}"
            );
        }
    }

    #[test]
    fn unknown_model_and_multiplier_are_reported() {
        let ckpt = tiny_checkpoint(8, 0.2);
        let mut bad = opts(ServeExecutor::Exact);
        bad.model = "vgg".to_string();
        assert!(ServedModel::from_checkpoint_json(&ckpt, &bad)
            .unwrap_err()
            .contains("unknown model"));
        let mut bad = opts(ServeExecutor::Approx);
        bad.mult = "nope".to_string();
        assert!(ServedModel::from_checkpoint_json(&ckpt, &bad)
            .unwrap_err()
            .contains("unknown multiplier"));
    }

    #[test]
    fn mismatched_checkpoint_is_an_error() {
        let ckpt = tiny_checkpoint(8, 0.2);
        let mut other = opts(ServeExecutor::Exact);
        other.width = 0.5;
        assert!(ServedModel::from_checkpoint_json(&ckpt, &other)
            .unwrap_err()
            .contains("checkpoint mismatch"));
    }

    #[test]
    fn spec_builds_bit_identical_replicas_off_one_shared_checkpoint() {
        let ckpt = tiny_checkpoint(8, 0.2);
        let spec = ServeSpec::from_json(&ckpt, &opts(ServeExecutor::Approx)).unwrap();
        let mut replicas = spec.build_replicas(3).unwrap();
        assert_eq!(replicas.len(), 3);
        let canaries: Vec<Vec<u32>> = replicas
            .iter_mut()
            .map(|m| m.canary_logits(7).iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(canaries[0], canaries[1]);
        assert_eq!(canaries[0], canaries[2]);
        // Same seed, same replica → same canary; different seed → (almost
        // surely) different input, and a deterministic re-derivation.
        let again: Vec<u32> = replicas[0]
            .canary_logits(7)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(canaries[0], again);
    }

    #[test]
    fn batched_forward_matches_single_requests_bitwise() {
        let ckpt = tiny_checkpoint(8, 0.2);
        let mut model =
            ServedModel::from_checkpoint_json(&ckpt, &opts(ServeExecutor::Approx)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| init::uniform(&[model.input_len()], -1.0, 1.0, &mut rng))
            .collect();
        let views: Vec<&[f32]> = inputs.iter().map(|t| t.as_slice()).collect();
        let batched = model.forward_batch(&views);
        for (i, view) in views.iter().enumerate() {
            let alone = model.forward_batch(&[view]);
            let a: Vec<u32> = alone[0].iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = batched[i].iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "sample {i} differs alone vs batched");
        }
    }
}
