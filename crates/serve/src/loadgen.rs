//! Load generation: a framing client plus closed- and open-loop drivers.
//!
//! The **closed loop** models a fixed population of synchronous callers:
//! `connections` threads each fire `requests` back-to-back requests, so
//! offered load self-throttles to the service rate — the classic
//! throughput probe.
//!
//! The **open loop** models independent arrivals: each connection sends on
//! a fixed schedule (`rate_rps` split evenly across connections) and
//! measures latency **from the scheduled send time**, not the actual one.
//! If the service falls behind, the backlog inflates the recorded latency
//! instead of silently slowing the arrival process down — the
//! coordinated-omission correction.
//!
//! All inputs are deterministic (`StdRng` per connection, seeded from the
//! run seed and the connection index), so two runs against the same server
//! offer bit-identical request streams.

use crate::protocol::{read_frame, write_frame, Request, ResponseMsg};
use crate::stats::LatencySummary;
use axnn_data::resize::{PreprocessSpec, RawFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

/// A blocking request/response client over the length-prefixed protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, payload: &str) -> io::Result<ResponseMsg> {
        write_frame(&mut self.writer, payload.as_bytes())?;
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        ResponseMsg::parse(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one inference request and waits for the response.
    pub fn infer(&mut self, id: u64, input: &[f32]) -> io::Result<ResponseMsg> {
        self.round_trip(&Request::inference_json(id, input))
    }

    /// Sends one raw-frame inference request — the server runs its
    /// preprocessing pipeline on the frame before batching.
    pub fn infer_raw(&mut self, id: u64, frame: &RawFrame) -> io::Result<ResponseMsg> {
        self.round_trip(&Request::raw_frame_json(id, frame))
    }

    /// Sends a control command (`ping`, `info`, `shutdown`).
    pub fn command(&mut self, cmd: &str) -> io::Result<ResponseMsg> {
        self.round_trip(&Request::command_json(cmd))
    }

    /// Sends one request and returns the raw response frame — for the
    /// snapshot commands (`metrics`, `trace`), whose JSON bodies carry more
    /// structure than [`ResponseMsg`] models.
    pub fn raw_round_trip(&mut self, payload: &str) -> io::Result<Vec<u8>> {
        write_frame(&mut self.writer, payload.as_bytes())?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Fetches the live metrics snapshot (`{"cmd": "metrics"}`) as a JSON
    /// string. `format` of `Some("prometheus")` asks for the text
    /// exposition envelope instead.
    pub fn metrics(&mut self, format: Option<&str>) -> io::Result<String> {
        let frame = self.raw_round_trip(&Request::metrics_json(format))?;
        snapshot_body(frame, "metrics")
    }

    /// Fetches the last `n` trace records (`{"cmd": "trace"}`) as a JSON
    /// string.
    pub fn trace_tail(&mut self, n: usize) -> io::Result<String> {
        let frame = self.raw_round_trip(&Request::trace_json(n))?;
        snapshot_body(frame, "trace")
    }
}

/// Validates a snapshot frame: UTF-8, and its `status` is the expected
/// word (a server-side `error` response surfaces as `InvalidData` with the
/// detail).
fn snapshot_body(frame: Vec<u8>, want_status: &str) -> io::Result<String> {
    let msg =
        ResponseMsg::parse(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if msg.status != want_status {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected status '{want_status}', got '{}'{}",
                msg.status,
                if msg.detail.is_empty() {
                    String::new()
                } else {
                    format!(": {}", msg.detail)
                }
            ),
        ));
    }
    String::from_utf8(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Asks the server at `addr` for its input length via `{"cmd": "info"}`.
pub fn probe_input_len(addr: impl ToSocketAddrs) -> io::Result<usize> {
    let msg = Client::connect(addr)?.command("info")?;
    if msg.status != "info" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected info, got '{}'", msg.status),
        ));
    }
    Ok(msg.input_len as usize)
}

/// Asks the server at `addr` for its raw-frame preprocessing spec via
/// `{"cmd": "info"}` — the spec a client runs locally to reproduce
/// server-side preprocessing bit-for-bit.
pub fn probe_preprocess_spec(addr: impl ToSocketAddrs) -> io::Result<PreprocessSpec> {
    let msg = Client::connect(addr)?.command("info")?;
    if msg.status != "info" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected info, got '{}'", msg.status),
        ));
    }
    msg.preprocess.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "server published no preprocess spec",
        )
    })
}

/// Connects and issues `{"cmd": "shutdown"}`; returns the server's reply.
pub fn shutdown_server(addr: impl ToSocketAddrs) -> io::Result<ResponseMsg> {
    Client::connect(addr)?.command("shutdown")
}

/// Connects and issues `{"cmd": "reload", "path": ...}` — the checkpoint
/// hot-swap trigger. `path` is resolved on the **server's** filesystem.
pub fn reload_server(addr: impl ToSocketAddrs, path: &str) -> io::Result<ResponseMsg> {
    let mut client = Client::connect(addr)?;
    client.round_trip(&Request::reload_json(path))
}

/// Sends the deterministic canary request derived from `seed` and returns
/// the reply. Bit-identical servers answer with bit-identical logits, so
/// two probes with the same seed against servers that should agree (e.g.
/// 1 vs 4 replicas) can be compared byte-for-byte — the tier-1
/// replica-invariance gate.
pub fn canary_probe(
    addr: impl ToSocketAddrs,
    input_len: usize,
    seed: u64,
) -> io::Result<ResponseMsg> {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = deterministic_input(&mut rng, input_len);
    Client::connect(addr)?.infer(seed, &input)
}

/// Parameters of one load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Open-loop target arrival rate over all connections, requests/s.
    /// `0.0` selects the closed loop.
    pub rate_rps: f64,
    /// Seed for the deterministic input streams.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests: 32,
            rate_rps: 0.0,
            seed: 1,
        }
    }
}

/// Aggregated result of one load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Concurrent connections used.
    pub connections: usize,
    /// Open-loop offered rate (0 for closed loop), requests/s.
    pub offered_rps: f64,
    /// Requests sent.
    pub sent: usize,
    /// `ok` responses.
    pub ok: usize,
    /// `overloaded` + `draining` rejections.
    pub rejected: usize,
    /// `error` responses and transport failures.
    pub errors: usize,
    /// Wall-clock of the whole run, seconds.
    pub elapsed_s: f64,
    /// Completed (`ok`) responses per second.
    pub throughput_rps: f64,
    /// `rejected / sent`.
    pub reject_rate: f64,
    /// Client-observed end-to-end latency of `ok` responses.
    pub latency: LatencySummary,
    /// Server-reported queue-wait split of `ok` responses.
    pub queue_wait: LatencySummary,
    /// Server-reported compute split of `ok` responses.
    pub compute: LatencySummary,
}

impl LoadReport {
    /// Hand-written JSON object (the `results/BENCH_serve.json` style).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"connections\": {}, \"offered_rps\": {}, \
             \"sent\": {}, \"ok\": {}, \"rejected\": {}, \"errors\": {}, \
             \"elapsed_s\": {}, \"throughput_rps\": {}, \"reject_rate\": {}, \
             \"latency\": {{{}}}, \"queue_wait\": {{{}}}, \"compute\": {{{}}}}}",
            self.mode,
            self.connections,
            fmt(self.offered_rps),
            self.sent,
            self.ok,
            self.rejected,
            self.errors,
            fmt(self.elapsed_s),
            fmt(self.throughput_rps),
            fmt(self.reject_rate),
            self.latency.json_members(),
            self.queue_wait.json_members(),
            self.compute.json_members(),
        )
    }
}

fn fmt(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Per-connection tally folded into the [`LoadReport`].
#[derive(Debug, Default)]
struct ConnTally {
    sent: usize,
    ok: usize,
    rejected: usize,
    errors: usize,
    latency_us: Vec<f64>,
    queue_us: Vec<f64>,
    compute_us: Vec<f64>,
}

impl ConnTally {
    fn absorb(&mut self, msg: &io::Result<ResponseMsg>, latency_us: f64) {
        self.sent += 1;
        match msg {
            Ok(m) if m.status == "ok" => {
                self.ok += 1;
                self.latency_us.push(latency_us);
                self.queue_us.push(m.queue_us);
                self.compute_us.push(m.compute_us);
            }
            Ok(m) if m.status == "overloaded" || m.status == "draining" => self.rejected += 1,
            _ => self.errors += 1,
        }
    }
}

fn deterministic_input(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Offset of the `k`-th open-loop send from the connection's start time.
/// Computed as one f64 product: exact for any realistic sweep length,
/// immune to the `usize as u32` truncation and `Duration * u32` overflow
/// of the naive `gap * k`.
fn scheduled_offset(gap_secs: f64, k: usize) -> Duration {
    Duration::from_secs_f64(gap_secs * k as f64)
}

/// Runs one load-generation phase against a running server.
///
/// `cfg.rate_rps == 0` drives the closed loop, anything positive the open
/// loop. Returns an error only when a *connection* cannot be established;
/// per-request failures are tallied in the report.
pub fn run(addr: impl ToSocketAddrs, input_len: usize, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let open = cfg.rate_rps > 0.0;
    // Per-connection inter-arrival gap for the open loop: the offered rate
    // is split evenly, wrk2-style. Kept in f64 seconds — the k-th send is
    // scheduled via `scheduled_offset`, which multiplies in f64 instead of
    // the old `gap * k as u32` (a usize→u32 truncation plus a
    // `Duration * u32` overflow hazard on long sweeps).
    let gap_secs = if open {
        cfg.connections.max(1) as f64 / cfg.rate_rps
    } else {
        0.0
    };

    let started = Instant::now();
    let mut workers = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let seed = cfg.seed ^ ((conn as u64 + 1) * 0x9e37_79b9);
        let requests = cfg.requests;
        let handle = thread::Builder::new()
            .name(format!("loadgen-{conn}"))
            .spawn(move || -> io::Result<ConnTally> {
                let mut client = Client::connect(addr)?;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut tally = ConnTally::default();
                let base = Instant::now();
                for k in 0..requests {
                    let scheduled = base + scheduled_offset(gap_secs, k);
                    if open {
                        let now = Instant::now();
                        if scheduled > now {
                            thread::sleep(scheduled - now);
                        }
                    }
                    let input = deterministic_input(&mut rng, input_len);
                    let t0 = if open { scheduled } else { Instant::now() };
                    let msg = client.infer(k as u64, &input);
                    let latency_us = t0.elapsed().as_secs_f64() * 1e6;
                    let failed = msg.is_err();
                    tally.absorb(&msg, latency_us);
                    if failed {
                        // Transport error: the connection is unusable.
                        break;
                    }
                }
                Ok(tally)
            })?;
        workers.push(handle);
    }

    let mut report = LoadReport {
        mode: if open { "open" } else { "closed" },
        connections: cfg.connections,
        offered_rps: cfg.rate_rps,
        ..LoadReport::default()
    };
    let mut latency = Vec::new();
    let mut queue_wait = Vec::new();
    let mut compute = Vec::new();
    for handle in workers {
        let tally = handle
            .join()
            .map_err(|_| io::Error::other("loadgen worker panicked"))??;
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.rejected += tally.rejected;
        report.errors += tally.errors;
        latency.extend(tally.latency_us);
        queue_wait.extend(tally.queue_us);
        compute.extend(tally.compute_us);
    }
    report.elapsed_s = started.elapsed().as_secs_f64();
    if report.elapsed_s > 0.0 {
        report.throughput_rps = report.ok as f64 / report.elapsed_s;
    }
    if report.sent > 0 {
        report.reject_rate = report.rejected as f64 / report.sent as f64;
    }
    report.latency = LatencySummary::from_samples(latency);
    report.queue_wait = LatencySummary::from_samples(queue_wait);
    report.compute = LatencySummary::from_samples(compute);
    Ok(report)
}

/// Parameters of a multi-rate open-loop sweep ([`sweep`]).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Concurrent connections per rate step.
    pub connections: usize,
    /// Offered rates to probe, requests/s, in ascending order.
    pub rates: Vec<f64>,
    /// Wall-clock budget per rate step; the per-connection request count
    /// is derived as `rate * step_duration / connections` (min 4).
    pub step_duration_s: f64,
    /// Seed for the deterministic request streams.
    pub seed: u64,
    /// A step "keeps up" when `throughput / offered ≥` this and nothing
    /// was rejected or errored.
    pub keepup_ratio: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            connections: 4,
            rates: Vec::new(),
            step_duration_s: 1.5,
            seed: 1,
            keepup_ratio: 0.9,
        }
    }
}

/// One probed rate of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered rate of this step, requests/s.
    pub offered_rps: f64,
    /// Whether the step met the keep-up criterion.
    pub kept_up: bool,
    /// Full open-loop report of the step.
    pub report: LoadReport,
}

/// Result of a [`sweep`]: the probed points and the located saturation
/// knee.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// One point per probed rate, in probe order.
    pub points: Vec<SweepPoint>,
    /// Highest offered rate that still kept up (0 when none did).
    pub knee_offered_rps: f64,
    /// Best completed throughput observed across all points — the
    /// saturated service rate.
    pub knee_throughput_rps: f64,
}

impl SweepReport {
    /// Hand-written JSON object for `results/BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"offered_rps\": {}, \"kept_up\": {}, \"report\": {}}}",
                    fmt(p.offered_rps),
                    p.kept_up,
                    p.report.to_json()
                )
            })
            .collect();
        format!(
            "{{\"knee_offered_rps\": {}, \"knee_throughput_rps\": {}, \"points\": [{}]}}",
            fmt(self.knee_offered_rps),
            fmt(self.knee_throughput_rps),
            points.join(", "),
        )
    }
}

/// Probes the server open-loop at each configured rate and locates the
/// saturation knee: the highest offered rate the service still keeps up
/// with (completed/offered ≥ `keepup_ratio`, zero rejects/errors). The
/// knee throughput is the best completed rate seen at any step — past the
/// knee an open-loop service saturates flat, so the maximum is the
/// service's capacity.
pub fn sweep(
    addr: impl ToSocketAddrs + Copy,
    input_len: usize,
    cfg: &SweepConfig,
) -> io::Result<SweepReport> {
    let mut out = SweepReport::default();
    for (step, &rate) in cfg.rates.iter().enumerate() {
        let requests =
            ((rate * cfg.step_duration_s / cfg.connections.max(1) as f64).ceil() as usize).max(4);
        let report = run(
            addr,
            input_len,
            &LoadConfig {
                connections: cfg.connections,
                requests,
                rate_rps: rate,
                seed: cfg.seed ^ ((step as u64 + 1) << 16),
            },
        )?;
        let kept_up = report.throughput_rps >= cfg.keepup_ratio * rate
            && report.rejected == 0
            && report.errors == 0;
        if kept_up {
            out.knee_offered_rps = out.knee_offered_rps.max(rate);
        }
        out.knee_throughput_rps = out.knee_throughput_rps.max(report.throughput_rps);
        out.points.push(SweepPoint {
            offered_rps: rate,
            kept_up,
            report,
        });
    }
    Ok(out)
}

/// A geometric rate ladder around an estimated service rate — the default
/// probe set for [`sweep`] when the caller has a closed-loop throughput
/// estimate.
pub fn rate_ladder(estimate_rps: f64, steps: usize) -> Vec<f64> {
    // 0.5x .. ~2x the estimate: below the knee, at it, and past it.
    let lo = (estimate_rps * 0.5).max(1.0);
    let growth = 1.32f64;
    (0..steps).map(|i| lo * growth.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_valid_and_complete() {
        let mut r = LoadReport {
            mode: "closed",
            connections: 4,
            sent: 10,
            ok: 8,
            rejected: 2,
            ..LoadReport::default()
        };
        r.reject_rate = 0.2;
        r.latency = LatencySummary::from_samples(vec![100.0, 200.0]);
        let v = axnn_obs::json::JsonValue::parse(r.to_json().as_bytes()).unwrap();
        assert_eq!(v.get("mode").and_then(|x| x.as_str()), Some("closed"));
        assert_eq!(v.get("rejected").and_then(|x| x.as_u64()), Some(2));
        let latency = v.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("reject_rate").and_then(|x| x.as_f64()), Some(0.2));
    }

    #[test]
    fn schedule_is_monotone_and_immune_to_u32_truncation() {
        // Regression: `gap * k as u32` truncated k at 2^32 and could
        // overflow Duration * u32 far earlier; the f64 path must keep
        // growing monotonically across both hazards.
        let gap = 0.001; // 1 ms
        let before = scheduled_offset(gap, u32::MAX as usize);
        let after = scheduled_offset(gap, u32::MAX as usize + 1);
        assert!(after > before, "must not wrap at the u32 boundary");
        // A 1-hour gap times 5000 sends overflowed `Duration * u32`
        // arithmetic pathways measured in nanoseconds; f64 seconds do not.
        let huge = scheduled_offset(3600.0, 5000);
        assert_eq!(huge.as_secs(), 5000 * 3600);
        assert_eq!(scheduled_offset(0.0, 123), Duration::ZERO);
    }

    #[test]
    fn rate_ladder_brackets_the_estimate() {
        let rates = rate_ladder(100.0, 6);
        assert_eq!(rates.len(), 6);
        assert!(rates[0] <= 51.0, "starts below the estimate: {rates:?}");
        assert!(
            *rates.last().unwrap() > 150.0,
            "ends past the estimate: {rates:?}"
        );
        assert!(rates.windows(2).all(|w| w[1] > w[0]), "ascending");
    }

    #[test]
    fn sweep_report_json_is_valid() {
        let mut report = SweepReport {
            knee_offered_rps: 80.0,
            knee_throughput_rps: 92.5,
            ..SweepReport::default()
        };
        report.points.push(SweepPoint {
            offered_rps: 80.0,
            kept_up: true,
            report: LoadReport {
                mode: "open",
                ok: 10,
                sent: 10,
                ..LoadReport::default()
            },
        });
        let v = axnn_obs::json::JsonValue::parse(report.to_json().as_bytes()).unwrap();
        assert_eq!(
            v.get("knee_offered_rps").and_then(|x| x.as_f64()),
            Some(80.0)
        );
        let points = v.get("points").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            points[0].get("kept_up").and_then(|x| x.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn deterministic_inputs_repeat_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            deterministic_input(&mut a, 8),
            deterministic_input(&mut b, 8)
        );
    }
}
