//! Bounded admission-controlled queue with dynamic micro-batching.
//!
//! Requests are admitted only while the queue holds fewer than
//! `capacity` jobs — beyond that the push fails immediately with
//! [`AdmitError::Overloaded`] and the connection thread turns the failure
//! into an explicit rejection response instead of letting latency grow
//! without bound (admission control, not load shedding by timeout).
//!
//! The batcher side pops *micro-batches*: a batch flushes as soon as
//! `max_batch` jobs are waiting **or** the oldest job has waited
//! `batch_window`, whichever comes first. Under heavy load batches are
//! full (throughput-optimal); under light load a lone request pays at most
//! one window of extra latency.
//!
//! Shutdown is a drain: [`BatchQueue::start_drain`] atomically flips the
//! queue into draining mode — subsequent pushes fail with
//! [`AdmitError::Draining`], already-admitted jobs are still batched and
//! served (immediately, ignoring the window), and [`BatchQueue::next_batch`]
//! returns `None` once the backlog is empty so the worker can exit.
//!
//! With replica workers, a [`Dispatcher`] fronts one `BatchQueue` per
//! replica: admission control stays **global** (a shared permit counter
//! enforces the configured capacity across all replicas, so N replicas do
//! not silently multiply the queue bound), and each admitted job lands on
//! the least-loaded replica queue. Per-queue batching semantics — the
//! max-batch/window flush rule — are unchanged.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing of the queue and the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Maximum jobs waiting; pushes beyond this are rejected.
    pub capacity: usize,
    /// Maximum jobs per micro-batch.
    pub max_batch: usize,
    /// Longest the oldest job may wait before a partial batch flushes.
    pub batch_window: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            max_batch: 8,
            batch_window: Duration::from_micros(2000),
        }
    }
}

/// The reply a job's connection thread receives once its batch ran.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Echo of the request id.
    pub id: u64,
    /// The logits for this job's input.
    pub logits: Vec<f32>,
    /// Time the job spent queued before its batch started, microseconds.
    pub queue_us: f64,
    /// Wall-clock of the whole batch forward pass, microseconds.
    pub compute_us: f64,
    /// Size of the micro-batch the job rode in.
    pub batch: usize,
}

/// One admitted inference job.
#[derive(Debug)]
pub struct Job {
    /// Client-chosen request id.
    pub id: u64,
    /// Server-assigned trace id, drawn from the server-wide sequence
    /// inside [`BatchQueue::push`] while the queue mutex is held — so ids
    /// are monotonic in queue order and a popped batch's jobs always carry
    /// strictly increasing ids. Rejected requests never receive an id
    /// (the id space is dense: `1..=last_trace_id`).
    pub trace: u64,
    /// Flattened input image.
    pub input: Vec<f32>,
    /// Admission timestamp (queue-wait measurement starts here).
    pub enqueued: Instant,
    /// Where the worker sends the reply.
    pub reply: mpsc::Sender<BatchReply>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity.
    Overloaded,
    /// The server is shutting down.
    Draining,
}

impl AdmitError {
    /// The `status` word the protocol uses for this rejection.
    pub fn reason(self) -> &'static str {
        match self {
            AdmitError::Overloaded => "overloaded",
            AdmitError::Draining => "draining",
        }
    }
}

/// A micro-batch popped by the worker.
#[derive(Debug)]
pub struct Batch {
    /// The jobs, in admission order.
    pub jobs: Vec<Job>,
    /// Queue depth at the instant the batch was cut (before removal);
    /// recorded into the `serve:queue_depth` histogram.
    pub depth_at_pop: usize,
}

struct Inner {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The bounded micro-batching queue shared by connection threads (push
/// side) and the single model worker (pop side).
pub struct BatchQueue {
    inner: Mutex<Inner>,
    wake: Condvar,
    cfg: QueueConfig,
}

impl BatchQueue {
    /// Creates an empty queue.
    pub fn new(cfg: QueueConfig) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            cfg,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a job, or rejects it without blocking. On success returns the
    /// queue depth after the push (for depth telemetry at the edge).
    ///
    /// The job's trace id is drawn from `trace_seq` *under the queue
    /// mutex*, after the admission checks — ids are therefore monotonic in
    /// queue order (a popped batch is admission-ordered by construction)
    /// and rejected requests never consume one.
    pub fn push(&self, mut job: Job, trace_seq: &AtomicU64) -> Result<usize, AdmitError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(AdmitError::Draining);
        }
        if inner.jobs.len() >= self.cfg.capacity {
            return Err(AdmitError::Overloaded);
        }
        job.trace = trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.wake.notify_one();
        Ok(depth)
    }

    /// Current queue depth (jobs waiting, not counting any batch already
    /// popped by the worker).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Flips the queue into draining mode and wakes the worker. Idempotent.
    pub fn start_drain(&self) {
        self.lock().draining = true;
        self.wake.notify_all();
    }

    /// Whether [`Self::start_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until a micro-batch is due and pops it, or returns `None`
    /// when the queue is draining and empty (worker exit signal).
    ///
    /// A batch is due when `max_batch` jobs are waiting, when the oldest
    /// waiting job reaches the `batch_window` deadline, or immediately
    /// during a drain.
    pub fn next_batch(&self) -> Option<Batch> {
        let mut inner = self.lock();
        loop {
            if let Some(oldest) = inner.jobs.front() {
                let full = inner.jobs.len() >= self.cfg.max_batch;
                let deadline = oldest.enqueued + self.cfg.batch_window;
                let now = Instant::now();
                if full || inner.draining || now >= deadline {
                    let depth_at_pop = inner.jobs.len();
                    let take = depth_at_pop.min(self.cfg.max_batch);
                    let jobs: Vec<Job> = inner.jobs.drain(..take).collect();
                    return Some(Batch { jobs, depth_at_pop });
                }
                // Partial batch: sleep until the window closes or a push
                // (or drain) wakes us early.
                let (guard, _) = self
                    .wake
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            } else if inner.draining {
                return None;
            } else {
                inner = self.wake.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Least-loaded dispatch over one [`BatchQueue`] per replica, with a
/// **global** admission bound.
///
/// The shared permit counter means `cfg.capacity` keeps its single-worker
/// meaning — "jobs waiting across the whole server" — no matter how many
/// replicas exist. Each per-replica queue is sized to the full capacity so
/// the local bound never fires before the global one (with one replica the
/// two coincide and the dispatcher degenerates to today's semantics
/// exactly). Workers call [`Dispatcher::release`] once per popped batch to
/// return the permits.
pub struct Dispatcher {
    queues: Vec<BatchQueue>,
    admitted: AtomicUsize,
    capacity: usize,
    draining: AtomicBool,
}

impl Dispatcher {
    /// One queue per replica, all batching under `cfg`, admission bounded
    /// globally by `cfg.capacity`.
    ///
    /// # Panics
    /// If `replicas == 0`.
    pub fn new(cfg: QueueConfig, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Dispatcher {
            queues: (0..replicas).map(|_| BatchQueue::new(cfg)).collect(),
            admitted: AtomicUsize::new(0),
            capacity: cfg.capacity,
            draining: AtomicBool::new(false),
        }
    }

    /// Number of replica queues.
    pub fn replicas(&self) -> usize {
        self.queues.len()
    }

    /// The queue replica `i` pops from.
    pub fn queue(&self, i: usize) -> &BatchQueue {
        &self.queues[i]
    }

    /// Admits a job onto the least-loaded replica queue, or rejects it
    /// without blocking. On success returns `(replica, depth_after_push)`.
    /// `trace_seq` is the server-wide trace-id sequence, drawn from under
    /// the chosen queue's mutex (see [`BatchQueue::push`]).
    pub fn push(&self, job: Job, trace_seq: &AtomicU64) -> Result<(usize, usize), AdmitError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(AdmitError::Draining);
        }
        // Global admission: claim a permit or reject. fetch_update never
        // overshoots under contention, unlike an add-then-check.
        if self
            .admitted
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_err()
        {
            return Err(AdmitError::Overloaded);
        }
        // Least-loaded pick; ties go to the lowest index so a single
        // trickle of requests stays on replica 0 (warm plan cache).
        let replica = (0..self.queues.len())
            .min_by_key(|&i| self.queues[i].depth())
            .expect("at least one replica");
        match self.queues[replica].push(job, trace_seq) {
            Ok(depth) => Ok((replica, depth)),
            Err(e) => {
                // Lost the race with a drain; hand the permit back.
                self.admitted.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Returns `batch_len` permits after a worker popped a batch.
    pub fn release(&self, batch_len: usize) {
        self.admitted.fetch_sub(batch_len, Ordering::SeqCst);
    }

    /// Jobs currently admitted and waiting, across all replicas.
    pub fn admitted(&self) -> usize {
        self.admitted.load(Ordering::SeqCst)
    }

    /// Flips every replica queue into draining mode. Idempotent.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for q in &self.queues {
            q.start_drain();
        }
    }

    /// Whether [`Self::start_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn seq() -> AtomicU64 {
        AtomicU64::new(0)
    }

    fn job(id: u64) -> (Job, mpsc::Receiver<BatchReply>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id,
                trace: id,
                input: Vec::new(),
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    fn cfg(capacity: usize, max_batch: usize, window_us: u64) -> QueueConfig {
        QueueConfig {
            capacity,
            max_batch,
            batch_window: Duration::from_micros(window_us),
        }
    }

    #[test]
    fn push_beyond_capacity_is_overloaded() {
        let seq = seq();
        let q = BatchQueue::new(cfg(2, 8, 1_000_000));
        assert_eq!(q.push(job(1).0, &seq), Ok(1));
        assert_eq!(q.push(job(2).0, &seq), Ok(2));
        assert_eq!(q.push(job(3).0, &seq), Err(AdmitError::Overloaded));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_window() {
        let seq = seq();
        let q = BatchQueue::new(cfg(8, 3, 60_000_000));
        for id in 0..4 {
            q.push(job(id).0, &seq).unwrap();
        }
        let start = Instant::now();
        let batch = q.next_batch().expect("batch due");
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait");
        assert_eq!(batch.jobs.len(), 3, "capped at max_batch");
        assert_eq!(batch.depth_at_pop, 4);
        assert_eq!(
            batch.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "admission order"
        );
        assert_eq!(
            batch.jobs.iter().map(|j| j.trace).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "trace ids are dense and admission-ordered"
        );
        assert_eq!(q.depth(), 1, "remainder stays queued");
    }

    #[test]
    fn partial_batch_flushes_when_the_window_closes() {
        let seq = seq();
        let q = BatchQueue::new(cfg(8, 8, 20_000));
        q.push(job(7).0, &seq).unwrap();
        let start = Instant::now();
        let batch = q.next_batch().expect("batch due");
        assert_eq!(batch.jobs.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_micros(10_000),
            "flushed suspiciously early: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn drain_rejects_new_jobs_but_serves_the_backlog() {
        let seq = seq();
        let q = BatchQueue::new(cfg(8, 4, 60_000_000));
        q.push(job(1).0, &seq).unwrap();
        q.push(job(2).0, &seq).unwrap();
        q.start_drain();
        assert_eq!(q.push(job(3).0, &seq), Err(AdmitError::Draining));
        let batch = q.next_batch().expect("backlog still served");
        assert_eq!(batch.jobs.len(), 2);
        assert!(q.next_batch().is_none(), "drained and empty");
    }

    #[test]
    fn drain_wakes_a_blocked_worker() {
        let q = Arc::new(BatchQueue::new(cfg(8, 8, 60_000_000)));
        let q2 = Arc::clone(&q);
        let worker = thread::spawn(move || q2.next_batch().is_none());
        thread::sleep(Duration::from_millis(20));
        q.start_drain();
        assert!(worker.join().unwrap(), "worker saw the drain and exited");
    }

    #[test]
    fn reply_channel_delivers_in_batch_order() {
        let seq = seq();
        let q = BatchQueue::new(cfg(8, 8, 0));
        let (j, rx) = job(9);
        q.push(j, &seq).unwrap();
        let batch = q.next_batch().unwrap();
        for j in batch.jobs {
            j.reply
                .send(BatchReply {
                    id: j.id,
                    logits: vec![1.0],
                    queue_us: 1.0,
                    compute_us: 2.0,
                    batch: 1,
                })
                .unwrap();
        }
        let reply = rx.recv().unwrap();
        assert_eq!(reply.id, 9);
        assert_eq!(reply.batch, 1);
    }

    #[test]
    fn dispatcher_capacity_is_global_not_per_replica() {
        let seq = seq();
        let d = Dispatcher::new(cfg(3, 8, 60_000_000), 4);
        for id in 0..3 {
            d.push(job(id).0, &seq).unwrap();
        }
        assert_eq!(d.push(job(9).0, &seq), Err(AdmitError::Overloaded));
        assert_eq!(d.admitted(), 3, "4 replicas must not quadruple capacity");
    }

    #[test]
    fn dispatcher_spreads_to_the_least_loaded_queue() {
        let seq = seq();
        let d = Dispatcher::new(cfg(8, 8, 60_000_000), 3);
        let mut replicas = Vec::new();
        for id in 0..6 {
            let (replica, depth) = d.push(job(id).0, &seq).unwrap();
            replicas.push(replica);
            assert!(depth <= 2);
        }
        // Round-robin by construction: every queue is shortest in turn.
        assert_eq!(replicas, vec![0, 1, 2, 0, 1, 2]);
        for i in 0..3 {
            assert_eq!(d.queue(i).depth(), 2);
        }
    }

    #[test]
    fn dispatcher_release_reopens_admission() {
        let seq = seq();
        let d = Dispatcher::new(cfg(1, 1, 0), 2);
        d.push(job(1).0, &seq).unwrap();
        assert_eq!(d.push(job(2).0, &seq), Err(AdmitError::Overloaded));
        let batch = d.queue(0).next_batch().unwrap();
        d.release(batch.jobs.len());
        assert_eq!(d.admitted(), 0);
        let (replica, _) = d.push(job(3).0, &seq).unwrap();
        assert_eq!(replica, 0, "both queues empty again; ties go to index 0");
    }

    #[test]
    fn dispatcher_drain_fans_out_and_rejects() {
        let seq = seq();
        let d = Dispatcher::new(cfg(8, 4, 60_000_000), 3);
        d.push(job(1).0, &seq).unwrap();
        d.start_drain();
        assert!(d.is_draining());
        assert_eq!(d.push(job(2).0, &seq), Err(AdmitError::Draining));
        // Backlog still served, then every worker sees the exit signal.
        assert_eq!(d.queue(0).next_batch().unwrap().jobs.len(), 1);
        for i in 0..3 {
            assert!(d.queue(i).next_batch().is_none(), "replica {i}");
        }
    }
}
