//! Bounded admission-controlled queue with dynamic micro-batching.
//!
//! Requests are admitted only while the queue holds fewer than
//! `capacity` jobs — beyond that the push fails immediately with
//! [`AdmitError::Overloaded`] and the connection thread turns the failure
//! into an explicit rejection response instead of letting latency grow
//! without bound (admission control, not load shedding by timeout).
//!
//! The batcher side pops *micro-batches*: a batch flushes as soon as
//! `max_batch` jobs are waiting **or** the oldest job has waited
//! `batch_window`, whichever comes first. Under heavy load batches are
//! full (throughput-optimal); under light load a lone request pays at most
//! one window of extra latency.
//!
//! Shutdown is a drain: [`BatchQueue::start_drain`] atomically flips the
//! queue into draining mode — subsequent pushes fail with
//! [`AdmitError::Draining`], already-admitted jobs are still batched and
//! served (immediately, ignoring the window), and [`BatchQueue::next_batch`]
//! returns `None` once the backlog is empty so the worker can exit.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing of the queue and the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Maximum jobs waiting; pushes beyond this are rejected.
    pub capacity: usize,
    /// Maximum jobs per micro-batch.
    pub max_batch: usize,
    /// Longest the oldest job may wait before a partial batch flushes.
    pub batch_window: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            max_batch: 8,
            batch_window: Duration::from_micros(2000),
        }
    }
}

/// The reply a job's connection thread receives once its batch ran.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Echo of the request id.
    pub id: u64,
    /// The logits for this job's input.
    pub logits: Vec<f32>,
    /// Time the job spent queued before its batch started, microseconds.
    pub queue_us: f64,
    /// Wall-clock of the whole batch forward pass, microseconds.
    pub compute_us: f64,
    /// Size of the micro-batch the job rode in.
    pub batch: usize,
}

/// One admitted inference job.
#[derive(Debug)]
pub struct Job {
    /// Client-chosen request id.
    pub id: u64,
    /// Flattened input image.
    pub input: Vec<f32>,
    /// Admission timestamp (queue-wait measurement starts here).
    pub enqueued: Instant,
    /// Where the worker sends the reply.
    pub reply: mpsc::Sender<BatchReply>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity.
    Overloaded,
    /// The server is shutting down.
    Draining,
}

impl AdmitError {
    /// The `status` word the protocol uses for this rejection.
    pub fn reason(self) -> &'static str {
        match self {
            AdmitError::Overloaded => "overloaded",
            AdmitError::Draining => "draining",
        }
    }
}

/// A micro-batch popped by the worker.
#[derive(Debug)]
pub struct Batch {
    /// The jobs, in admission order.
    pub jobs: Vec<Job>,
    /// Queue depth at the instant the batch was cut (before removal);
    /// recorded into the `serve:queue_depth` histogram.
    pub depth_at_pop: usize,
}

struct Inner {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The bounded micro-batching queue shared by connection threads (push
/// side) and the single model worker (pop side).
pub struct BatchQueue {
    inner: Mutex<Inner>,
    wake: Condvar,
    cfg: QueueConfig,
}

impl BatchQueue {
    /// Creates an empty queue.
    pub fn new(cfg: QueueConfig) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            cfg,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a job, or rejects it without blocking. On success returns the
    /// queue depth after the push (for depth telemetry at the edge).
    pub fn push(&self, job: Job) -> Result<usize, AdmitError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(AdmitError::Draining);
        }
        if inner.jobs.len() >= self.cfg.capacity {
            return Err(AdmitError::Overloaded);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.wake.notify_one();
        Ok(depth)
    }

    /// Current queue depth (jobs waiting, not counting any batch already
    /// popped by the worker).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Flips the queue into draining mode and wakes the worker. Idempotent.
    pub fn start_drain(&self) {
        self.lock().draining = true;
        self.wake.notify_all();
    }

    /// Whether [`Self::start_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until a micro-batch is due and pops it, or returns `None`
    /// when the queue is draining and empty (worker exit signal).
    ///
    /// A batch is due when `max_batch` jobs are waiting, when the oldest
    /// waiting job reaches the `batch_window` deadline, or immediately
    /// during a drain.
    pub fn next_batch(&self) -> Option<Batch> {
        let mut inner = self.lock();
        loop {
            if let Some(oldest) = inner.jobs.front() {
                let full = inner.jobs.len() >= self.cfg.max_batch;
                let deadline = oldest.enqueued + self.cfg.batch_window;
                let now = Instant::now();
                if full || inner.draining || now >= deadline {
                    let depth_at_pop = inner.jobs.len();
                    let take = depth_at_pop.min(self.cfg.max_batch);
                    let jobs: Vec<Job> = inner.jobs.drain(..take).collect();
                    return Some(Batch { jobs, depth_at_pop });
                }
                // Partial batch: sleep until the window closes or a push
                // (or drain) wakes us early.
                let (guard, _) = self
                    .wake
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            } else if inner.draining {
                return None;
            } else {
                inner = self.wake.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn job(id: u64) -> (Job, mpsc::Receiver<BatchReply>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id,
                input: Vec::new(),
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    fn cfg(capacity: usize, max_batch: usize, window_us: u64) -> QueueConfig {
        QueueConfig {
            capacity,
            max_batch,
            batch_window: Duration::from_micros(window_us),
        }
    }

    #[test]
    fn push_beyond_capacity_is_overloaded() {
        let q = BatchQueue::new(cfg(2, 8, 1_000_000));
        assert_eq!(q.push(job(1).0), Ok(1));
        assert_eq!(q.push(job(2).0), Ok(2));
        assert_eq!(q.push(job(3).0), Err(AdmitError::Overloaded));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_window() {
        let q = BatchQueue::new(cfg(8, 3, 60_000_000));
        for id in 0..4 {
            q.push(job(id).0).unwrap();
        }
        let start = Instant::now();
        let batch = q.next_batch().expect("batch due");
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait");
        assert_eq!(batch.jobs.len(), 3, "capped at max_batch");
        assert_eq!(batch.depth_at_pop, 4);
        assert_eq!(
            batch.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "admission order"
        );
        assert_eq!(q.depth(), 1, "remainder stays queued");
    }

    #[test]
    fn partial_batch_flushes_when_the_window_closes() {
        let q = BatchQueue::new(cfg(8, 8, 20_000));
        q.push(job(7).0).unwrap();
        let start = Instant::now();
        let batch = q.next_batch().expect("batch due");
        assert_eq!(batch.jobs.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_micros(10_000),
            "flushed suspiciously early: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn drain_rejects_new_jobs_but_serves_the_backlog() {
        let q = BatchQueue::new(cfg(8, 4, 60_000_000));
        q.push(job(1).0).unwrap();
        q.push(job(2).0).unwrap();
        q.start_drain();
        assert_eq!(q.push(job(3).0), Err(AdmitError::Draining));
        let batch = q.next_batch().expect("backlog still served");
        assert_eq!(batch.jobs.len(), 2);
        assert!(q.next_batch().is_none(), "drained and empty");
    }

    #[test]
    fn drain_wakes_a_blocked_worker() {
        let q = Arc::new(BatchQueue::new(cfg(8, 8, 60_000_000)));
        let q2 = Arc::clone(&q);
        let worker = thread::spawn(move || q2.next_batch().is_none());
        thread::sleep(Duration::from_millis(20));
        q.start_drain();
        assert!(worker.join().unwrap(), "worker saw the drain and exited");
    }

    #[test]
    fn reply_channel_delivers_in_batch_order() {
        let q = BatchQueue::new(cfg(8, 8, 0));
        let (j, rx) = job(9);
        q.push(j).unwrap();
        let batch = q.next_batch().unwrap();
        for j in batch.jobs {
            j.reply
                .send(BatchReply {
                    id: j.id,
                    logits: vec![1.0],
                    queue_us: 1.0,
                    compute_us: 2.0,
                    batch: 1,
                })
                .unwrap();
        }
        let reply = rx.recv().unwrap();
        assert_eq!(reply.id, 9);
        assert_eq!(reply.batch, 1);
    }
}
