//! Sustained raw-frame streaming: the open-loop frame-rate load generator
//! behind `axnn stream`, plus the raw-vs-tensor bit-identity probe.
//!
//! Where `loadgen` offers pre-shaped tensors, this driver offers **raw
//! `H×W×C` frames** on a fixed frame-rate schedule, exercising the
//! server-side preprocessing stage in front of micro-batching. Each step
//! reports the achieved frame rate and the per-stage latency breakdown —
//! preprocess vs queue wait vs compute, straight from the server's
//! per-response fields — as summaries *and* as fixed-geometry histograms
//! (the same bucket geometry the server's metrics window uses, so
//! client-observed and server-observed distributions line up bucket for
//! bucket).
//!
//! The **probe** is the correctness half: it sends one deterministic raw
//! frame, then preprocesses the same frame locally with the spec the
//! server publishes over `{"cmd": "info"}` and sends the result as a
//! pre-shaped tensor. The two logit vectors must match bit for bit —
//! server-side preprocessing is the same kernels, so any divergence is a
//! bug, not noise. tier-1 gates on it.

use crate::loadgen::{probe_preprocess_spec, Client};
use crate::server::{compute_spec, preprocess_time_spec, queue_wait_spec};
use crate::stats::LatencySummary;
use axnn_data::resize::RawFrame;
use axnn_obs::Hist;
use std::io;
use std::net::ToSocketAddrs;
use std::thread;
use std::time::{Duration, Instant};

/// Parameters of one streaming run (one rate step or a whole sweep).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Concurrent connections the offered frame rate is split across.
    pub connections: usize,
    /// Source frame rows (before server-side resizing).
    pub height: usize,
    /// Source frame columns.
    pub width: usize,
    /// Source frame channels (must match the model's channel count — the
    /// pipeline resizes, it does not convert colourspaces).
    pub channels: usize,
    /// Send `u8` pixels (the camera-byte path) instead of f32.
    pub u8_pixels: bool,
    /// Offered frame rates to probe, frames/s, ascending.
    pub fps: Vec<f64>,
    /// Wall-clock budget per rate step; the per-connection frame count is
    /// derived as `fps * step_duration / connections` (min 4).
    pub step_duration_s: f64,
    /// Seed for the deterministic frame streams.
    pub seed: u64,
    /// A step "keeps up" when `achieved / offered ≥` this and nothing was
    /// rejected or errored.
    pub keepup_ratio: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            connections: 2,
            height: 32,
            width: 32,
            channels: 3,
            u8_pixels: true,
            fps: Vec::new(),
            step_duration_s: 1.5,
            seed: 1,
            keepup_ratio: 0.9,
        }
    }
}

/// Per-stage latency view of one rate step: summary + fixed-geometry
/// histogram per stage, from the server-reported response fields.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    /// Server-side preprocessing (decode + resize + layout + normalize).
    pub preprocess: Stage,
    /// Queue wait between admission and batch cut.
    pub queue_wait: Stage,
    /// Batch forward pass.
    pub compute: Stage,
}

/// One stage's latency population.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Nearest-rank percentile summary, microseconds.
    pub summary: LatencySummary,
    /// Fixed-geometry histogram (the matching server window geometry).
    pub hist: Hist,
}

impl Stage {
    fn from_samples(samples: Vec<f64>, spec: axnn_obs::HistSpec) -> Stage {
        let mut hist = Hist::new(spec);
        hist.record_all(samples.iter().copied());
        Stage {
            summary: LatencySummary::from_samples(samples),
            hist,
        }
    }

    /// `{"summary": {...}, "hist": {...}}` — the summary in the loadgen
    /// style, the hist with its geometry and bucket counts.
    pub fn to_json(&self) -> String {
        let spec = self.hist.spec();
        let counts: Vec<String> = self
            .hist
            .bucket_counts()
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!(
            "{{\"summary\": {{{}}}, \"hist\": {{\"lo\": {}, \"hi\": {}, \
             \"buckets\": {}, \"counts\": [{}]}}}}",
            self.summary.json_members(),
            fmt(spec.lo),
            fmt(spec.hi),
            spec.buckets,
            counts.join(", "),
        )
    }
}

/// Aggregated result of one rate step.
#[derive(Debug, Clone)]
pub struct StreamPoint {
    /// Offered frame rate of this step, frames/s.
    pub offered_fps: f64,
    /// Whether the step met the keep-up criterion.
    pub kept_up: bool,
    /// Frames sent.
    pub sent: usize,
    /// `ok` responses.
    pub ok: usize,
    /// Admission-control / draining rejections.
    pub rejected: usize,
    /// `error` responses and transport failures.
    pub errors: usize,
    /// Wall-clock of the step, seconds.
    pub elapsed_s: f64,
    /// Completed frames per second.
    pub achieved_fps: f64,
    /// Client-observed end-to-end latency (from the scheduled send time —
    /// the coordinated-omission correction, like `loadgen`).
    pub latency: LatencySummary,
    /// Per-stage breakdown from the server-reported fields.
    pub stages: StageBreakdown,
}

impl StreamPoint {
    /// Hand-written JSON object for `results/BENCH_stream.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_fps\": {}, \"kept_up\": {}, \"sent\": {}, \"ok\": {}, \
             \"rejected\": {}, \"errors\": {}, \"elapsed_s\": {}, \
             \"achieved_fps\": {}, \"latency\": {{{}}}, \"preprocess\": {}, \
             \"queue_wait\": {}, \"compute\": {}}}",
            fmt(self.offered_fps),
            self.kept_up,
            self.sent,
            self.ok,
            self.rejected,
            self.errors,
            fmt(self.elapsed_s),
            fmt(self.achieved_fps),
            self.latency.json_members(),
            self.stages.preprocess.to_json(),
            self.stages.queue_wait.to_json(),
            self.stages.compute.to_json(),
        )
    }
}

/// Result of a frame-rate sweep: the probed points and the saturation knee.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Frame geometry the sweep offered (`HxWxC` + dtype).
    pub frame: String,
    /// One point per probed rate, in probe order.
    pub points: Vec<StreamPoint>,
    /// Highest offered frame rate that still kept up (0 when none did).
    pub knee_offered_fps: f64,
    /// Best achieved frame rate across all points.
    pub knee_achieved_fps: f64,
}

impl StreamReport {
    /// Hand-written JSON object for `results/BENCH_stream.json`.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(StreamPoint::to_json).collect();
        format!(
            "{{\"frame\": {}, \"knee_offered_fps\": {}, \"knee_achieved_fps\": {}, \
             \"points\": [{}]}}",
            crate::protocol::json_string(&self.frame),
            fmt(self.knee_offered_fps),
            fmt(self.knee_achieved_fps),
            points.join(", "),
        )
    }
}

fn fmt(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Per-connection tally folded into a [`StreamPoint`].
#[derive(Debug, Default)]
struct ConnTally {
    sent: usize,
    ok: usize,
    rejected: usize,
    errors: usize,
    latency_us: Vec<f64>,
    preprocess_us: Vec<f64>,
    queue_us: Vec<f64>,
    compute_us: Vec<f64>,
}

/// Offset of the `k`-th open-loop send from the connection's start time
/// (one f64 product — the same truncation-immune scheduling as `loadgen`).
fn scheduled_offset(gap_secs: f64, k: usize) -> Duration {
    Duration::from_secs_f64(gap_secs * k as f64)
}

/// Runs one open-loop rate step: `fps` frames/s split evenly across the
/// connections, latency measured from the scheduled send time. Returns an
/// error only when a connection cannot be established; per-frame failures
/// are tallied.
pub fn run_step(addr: impl ToSocketAddrs, fps: f64, cfg: &StreamConfig) -> io::Result<StreamPoint> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let conns = cfg.connections.max(1);
    let gap_secs = conns as f64 / fps.max(1e-9);
    let frames = ((fps * cfg.step_duration_s / conns as f64).ceil() as usize).max(4);
    let (h, w, c, u8p) = (cfg.height, cfg.width, cfg.channels, cfg.u8_pixels);

    let started = Instant::now();
    let mut workers = Vec::with_capacity(conns);
    for conn in 0..conns {
        let seed = cfg.seed ^ ((conn as u64 + 1) * 0x9e37_79b9);
        let handle = thread::Builder::new()
            .name(format!("stream-{conn}"))
            .spawn(move || -> io::Result<ConnTally> {
                let mut client = Client::connect(addr)?;
                let mut tally = ConnTally::default();
                let base = Instant::now();
                for k in 0..frames {
                    let scheduled = base + scheduled_offset(gap_secs, k);
                    let now = Instant::now();
                    if scheduled > now {
                        thread::sleep(scheduled - now);
                    }
                    // A fresh deterministic frame per send: seed mixes the
                    // connection and frame index, so re-runs offer
                    // bit-identical frame streams.
                    let frame = RawFrame::synthetic(h, w, c, u8p, seed ^ ((k as u64) << 20));
                    let msg = client.infer_raw(k as u64, &frame);
                    let latency_us = scheduled.elapsed().as_secs_f64() * 1e6;
                    tally.sent += 1;
                    match &msg {
                        Ok(m) if m.status == "ok" => {
                            tally.ok += 1;
                            tally.latency_us.push(latency_us);
                            tally.preprocess_us.push(m.preprocess_us);
                            tally.queue_us.push(m.queue_us);
                            tally.compute_us.push(m.compute_us);
                        }
                        Ok(m) if m.status == "overloaded" || m.status == "draining" => {
                            tally.rejected += 1;
                        }
                        _ => tally.errors += 1,
                    }
                    if msg.is_err() {
                        break; // transport error: the connection is unusable
                    }
                }
                Ok(tally)
            })?;
        workers.push(handle);
    }

    let mut point = StreamPoint {
        offered_fps: fps,
        kept_up: false,
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
        elapsed_s: 0.0,
        achieved_fps: 0.0,
        latency: LatencySummary::default(),
        stages: StageBreakdown {
            preprocess: Stage::from_samples(Vec::new(), preprocess_time_spec()),
            queue_wait: Stage::from_samples(Vec::new(), queue_wait_spec()),
            compute: Stage::from_samples(Vec::new(), compute_spec()),
        },
    };
    let (mut latency, mut pp, mut qw, mut cu) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for handle in workers {
        let tally = handle
            .join()
            .map_err(|_| io::Error::other("stream worker panicked"))??;
        point.sent += tally.sent;
        point.ok += tally.ok;
        point.rejected += tally.rejected;
        point.errors += tally.errors;
        latency.extend(tally.latency_us);
        pp.extend(tally.preprocess_us);
        qw.extend(tally.queue_us);
        cu.extend(tally.compute_us);
    }
    point.elapsed_s = started.elapsed().as_secs_f64();
    if point.elapsed_s > 0.0 {
        point.achieved_fps = point.ok as f64 / point.elapsed_s;
    }
    point.kept_up =
        point.achieved_fps >= cfg.keepup_ratio * fps && point.rejected == 0 && point.errors == 0;
    point.latency = LatencySummary::from_samples(latency);
    point.stages = StageBreakdown {
        preprocess: Stage::from_samples(pp, preprocess_time_spec()),
        queue_wait: Stage::from_samples(qw, queue_wait_spec()),
        compute: Stage::from_samples(cu, compute_spec()),
    };
    Ok(point)
}

/// Probes the server at every configured frame rate and locates the
/// saturation knee, `loadgen::sweep`-style.
pub fn sweep(addr: impl ToSocketAddrs + Copy, cfg: &StreamConfig) -> io::Result<StreamReport> {
    let mut out = StreamReport {
        frame: format!(
            "{}x{}x{} {}",
            cfg.height,
            cfg.width,
            cfg.channels,
            if cfg.u8_pixels { "u8" } else { "f32" },
        ),
        ..StreamReport::default()
    };
    for (step, &fps) in cfg.fps.iter().enumerate() {
        let mut step_cfg = cfg.clone();
        step_cfg.seed = cfg.seed ^ ((step as u64 + 1) << 16);
        let point = run_step(addr, fps, &step_cfg)?;
        if point.kept_up {
            out.knee_offered_fps = out.knee_offered_fps.max(fps);
        }
        out.knee_achieved_fps = out.knee_achieved_fps.max(point.achieved_fps);
        out.points.push(point);
    }
    Ok(out)
}

/// Result of the raw-vs-tensor bit-identity probe.
#[derive(Debug, Clone)]
pub struct StreamProbe {
    /// Whether the two logit vectors matched bit for bit.
    pub bit_identical: bool,
    /// Logit count (the model's class count).
    pub classes: usize,
    /// Largest |Δlogit| between the two paths (0 when identical).
    pub max_abs_delta: f64,
    /// Server-reported preprocessing time of the raw-frame path, µs.
    pub preprocess_us: f64,
}

impl StreamProbe {
    /// One-line JSON verdict (`"probe": "ok"` is the tier-1 grep target).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"probe\": \"{}\", \"classes\": {}, \"max_abs_delta\": {}, \
             \"preprocess_us\": {}}}",
            if self.bit_identical { "ok" } else { "mismatch" },
            self.classes,
            fmt(self.max_abs_delta),
            fmt(self.preprocess_us),
        )
    }
}

/// Sends one deterministic raw frame, preprocesses the same frame locally
/// with the server-published spec, sends the result as a pre-shaped
/// tensor, and compares the two logit vectors bit for bit. Both requests
/// ride the same connection, so the comparison holds at any replica or
/// batch configuration (logits are replica- and batch-invariant).
pub fn probe(
    addr: impl ToSocketAddrs + Copy,
    height: usize,
    width: usize,
    channels: usize,
    u8_pixels: bool,
    seed: u64,
) -> io::Result<StreamProbe> {
    let spec = probe_preprocess_spec(addr)?;
    let frame = RawFrame::synthetic(height, width, channels, u8_pixels, seed);
    let local = spec
        .apply(&frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut client = Client::connect(addr)?;
    let want_ok = |msg: crate::protocol::ResponseMsg, path: &str| {
        if msg.status == "ok" {
            Ok(msg)
        } else {
            Err(io::Error::other(format!(
                "{path} path answered '{}'{}",
                msg.status,
                if msg.detail.is_empty() {
                    String::new()
                } else {
                    format!(": {}", msg.detail)
                }
            )))
        }
    };
    let raw = want_ok(client.infer_raw(seed, &frame)?, "raw-frame")?;
    let tensor = want_ok(client.infer(seed.wrapping_add(1), &local)?, "tensor")?;
    let bit_identical = raw.logits.len() == tensor.logits.len()
        && raw
            .logits
            .iter()
            .zip(&tensor.logits)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let max_abs_delta = raw
        .logits
        .iter()
        .zip(&tensor.logits)
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0f64, f64::max);
    Ok(StreamProbe {
        bit_identical,
        classes: raw.logits.len(),
        max_abs_delta,
        preprocess_us: raw.preprocess_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_obs::HistSpec;

    #[test]
    fn stage_json_carries_geometry_and_counts() {
        let stage = Stage::from_samples(vec![100.0, 200.0, 300.0], HistSpec::new(0.0, 1000.0, 10));
        let v = axnn_obs::json::JsonValue::parse(stage.to_json().as_bytes()).unwrap();
        let summary = v.get("summary").unwrap();
        assert_eq!(summary.get("count").and_then(|x| x.as_u64()), Some(3));
        let hist = v.get("hist").unwrap();
        assert_eq!(hist.get("buckets").and_then(|x| x.as_u64()), Some(10));
        let counts = hist.get("counts").and_then(|x| x.as_array()).unwrap();
        assert_eq!(counts.len(), 10);
        let total: u64 = counts.iter().map(|c| c.as_u64().unwrap()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let mut report = StreamReport {
            frame: "32x48x3 u8".to_string(),
            knee_offered_fps: 50.0,
            knee_achieved_fps: 61.5,
            ..StreamReport::default()
        };
        report.points.push(StreamPoint {
            offered_fps: 50.0,
            kept_up: true,
            sent: 8,
            ok: 8,
            rejected: 0,
            errors: 0,
            elapsed_s: 0.2,
            achieved_fps: 40.0,
            latency: LatencySummary::from_samples(vec![500.0, 700.0]),
            stages: StageBreakdown {
                preprocess: Stage::from_samples(vec![90.0], preprocess_time_spec()),
                queue_wait: Stage::from_samples(vec![250.0], queue_wait_spec()),
                compute: Stage::from_samples(vec![1500.0], compute_spec()),
            },
        });
        let v = axnn_obs::json::JsonValue::parse(report.to_json().as_bytes()).unwrap();
        assert_eq!(v.get("frame").and_then(|x| x.as_str()), Some("32x48x3 u8"));
        assert_eq!(
            v.get("knee_offered_fps").and_then(|x| x.as_f64()),
            Some(50.0)
        );
        let p = &v.get("points").and_then(|x| x.as_array()).unwrap()[0];
        assert_eq!(p.get("kept_up").and_then(|x| x.as_bool()), Some(true));
        for stage in ["preprocess", "queue_wait", "compute"] {
            let s = p.get(stage).unwrap();
            assert!(s.get("summary").is_some(), "{stage} carries a summary");
            assert!(s.get("hist").is_some(), "{stage} carries a hist");
        }
    }

    #[test]
    fn probe_json_states_the_verdict() {
        let ok = StreamProbe {
            bit_identical: true,
            classes: 10,
            max_abs_delta: 0.0,
            preprocess_us: 42.5,
        };
        assert!(ok.to_json().contains("\"probe\": \"ok\""));
        let bad = StreamProbe {
            bit_identical: false,
            classes: 10,
            max_abs_delta: 0.25,
            preprocess_us: 42.5,
        };
        let v = axnn_obs::json::JsonValue::parse(bad.to_json().as_bytes()).unwrap();
        assert_eq!(v.get("probe").and_then(|x| x.as_str()), Some("mismatch"));
        assert_eq!(v.get("max_abs_delta").and_then(|x| x.as_f64()), Some(0.25));
    }
}
