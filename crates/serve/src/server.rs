//! The TCP inference server: acceptor, connection threads, and the single
//! model worker.
//!
//! ## Thread architecture
//!
//! ```text
//! acceptor ──spawns──▶ connection threads ──push──▶ BatchQueue
//!                                                      │ next_batch()
//!                                                      ▼
//!                                        model worker (owns the network)
//!                                                      │ BatchReply
//!                          connection threads ◀──mpsc──┘
//! ```
//!
//! Exactly **one** worker thread owns the [`ServedModel`] and runs every
//! micro-batch (parallelism comes from `axnn-par` *inside* the forward
//! pass, not from concurrent batches). That single-consumer design is what
//! makes serving deterministic — batches execute in queue order, and it is
//! also what satisfies the `axnn-obs` histogram discipline: all
//! order-sensitive hist recording (`serve:queue_wait_us`, `serve:compute_us`,
//! `serve:batch_size`, `serve:queue_depth`) happens on the worker thread
//! only. Connection threads touch only the order-insensitive
//! `serve:rejected` ratio.
//!
//! ## Shutdown
//!
//! `{"cmd": "shutdown"}` (or [`Server::shutdown`]) flips the queue into
//! draining mode: new work is rejected with `"draining"`, the admitted
//! backlog is batched and served, the worker exits on the empty queue, and
//! the acceptor is woken by a loop-back connection. Connection threads are
//! detached; they exit when their peer hangs up.

use crate::model::ServedModel;
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::queue::{BatchQueue, BatchReply, Job, QueueConfig};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Hist geometry for per-request queue wait, microseconds.
pub fn queue_wait_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 50_000.0, 64)
}

/// Hist geometry for per-batch compute time, microseconds.
pub fn compute_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 200_000.0, 64)
}

/// Hist geometry for micro-batch sizes.
pub fn batch_size_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 64.0, 64)
}

/// Hist geometry for queue depth at batch-cut time.
pub fn queue_depth_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 256.0, 64)
}

struct Shared {
    queue: BatchQueue,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Starts the drain exactly once and wakes the blocked acceptor with a
    /// loop-back connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.start_drain();
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running inference server. Dropping it shuts it down and joins the
/// acceptor and worker threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    input_len: usize,
    classes: usize,
}

impl Server {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// serving `model` under the given queue configuration.
    pub fn start(model: ServedModel, bind_addr: &str, cfg: QueueConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let input_len = model.input_len();
        let classes = model.classes();
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(cfg),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-worker".to_string())
                .spawn(move || worker_loop(model, &shared))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || acceptor_loop(listener, &shared, input_len, classes))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            worker: Some(worker),
            input_len,
            classes,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Flattened input length one request must carry.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Logits per response.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Begins the graceful drain and blocks until the acceptor and worker
    /// have exited. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }

    /// Waits for a remotely initiated shutdown (`{"cmd": "shutdown"}`) to
    /// finish draining — the blocking-serve path of `axnn serve`.
    pub fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(mut model: ServedModel, shared: &Shared) {
    while let Some(batch) = shared.queue.next_batch() {
        let views: Vec<&[f32]> = batch.jobs.iter().map(|j| j.input.as_slice()).collect();
        let started = Instant::now();
        let outputs = {
            let _s = axnn_obs::span("serve:batch");
            model.forward_batch(&views)
        };
        let compute_us = started.elapsed().as_secs_f64() * 1e6;
        let size = batch.jobs.len();
        axnn_obs::record_value("serve:batch_size", batch_size_spec(), size as f64);
        axnn_obs::record_value(
            "serve:queue_depth",
            queue_depth_spec(),
            batch.depth_at_pop as f64,
        );
        axnn_obs::record_value("serve:compute_us", compute_spec(), compute_us);
        for (job, logits) in batch.jobs.into_iter().zip(outputs) {
            let queue_us = started.duration_since(job.enqueued).as_secs_f64() * 1e6;
            axnn_obs::record_value("serve:queue_wait_us", queue_wait_spec(), queue_us);
            axnn_obs::record_ratio("serve:rejected", 0, 1);
            // A send error means the connection died while its job was in
            // flight; the batch result is simply dropped for that peer.
            let _ = job.reply.send(BatchReply {
                id: job.id,
                logits,
                queue_us,
                compute_us,
                batch: size,
            });
        }
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, input_len: usize, classes: usize) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_conn(stream, &shared, input_len, classes));
        if spawned.is_err() {
            // Thread exhaustion: drop the connection rather than the server.
            continue;
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Shared, input_len: usize, classes: usize) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let response = dispatch(&payload, shared, input_len, classes);
        if write_frame(&mut writer, response.to_json().as_bytes()).is_err() {
            break;
        }
    }
}

fn dispatch(payload: &[u8], shared: &Shared, input_len: usize, classes: usize) -> Response {
    let req = match Request::parse(payload) {
        Ok(req) => req,
        Err(detail) => return Response::Error { id: 0, detail },
    };
    if let Some(cmd) = req.cmd.as_deref() {
        return match cmd {
            "ping" => Response::Control { status: "pong" },
            "info" => Response::Info { input_len, classes },
            "shutdown" => {
                shared.begin_shutdown();
                Response::Control { status: "draining" }
            }
            other => Response::Error {
                id: req.id,
                detail: format!("unknown command '{other}'"),
            },
        };
    }
    if req.input.len() != input_len {
        return Response::Error {
            id: req.id,
            detail: format!("input length {} != {input_len}", req.input.len()),
        };
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        id: req.id,
        input: req.input,
        enqueued: Instant::now(),
        reply: tx,
    };
    match shared.queue.push(job) {
        Err(e) => {
            axnn_obs::record_ratio("serve:rejected", 1, 1);
            Response::Rejected {
                id: req.id,
                reason: e.reason(),
            }
        }
        Ok(_) => match rx.recv() {
            Ok(r) => Response::Ok {
                id: r.id,
                logits: r.logits,
                queue_us: r.queue_us,
                compute_us: r.compute_us,
                batch: r.batch,
            },
            Err(_) => Response::Error {
                id: req.id,
                detail: "worker dropped the job".to_string(),
            },
        },
    }
}
