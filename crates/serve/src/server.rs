//! The TCP inference server: acceptor, connection threads, and N replica
//! model workers behind a least-loaded dispatcher.
//!
//! ## Thread architecture
//!
//! ```text
//! acceptor ──spawns──▶ connection threads ──push──▶ Dispatcher
//!                                             (least-loaded pick, global
//!                                              admission permits)
//!                                    │                  │
//!                                    │        ┌─────────┼─────────┐
//!                                    │        ▼         ▼         ▼
//!                                    │   worker 0   worker 1 … worker N-1
//!                                    │   (own net + plan cache + arena)
//!                                    │        │ BatchReply
//!                                    ◀──mpsc──┘
//! ```
//!
//! Every replica worker owns a full [`ServedModel`] built from one shared
//! frozen checkpoint ([`ServeSpec`]); builds are seed-deterministic, so the
//! replicas are bit-identical and a request's logits do not depend on
//! *which* replica serves it — the replica-count analogue of the
//! batch/thread invariance (`tests/serve_invariance.rs`). Parallelism
//! *inside* a forward pass still comes from `axnn-par`; replicas add
//! coarse-grained concurrency across micro-batches on multi-core hosts.
//!
//! Order-sensitive hist recording now happens on N worker threads, so the
//! f64 moments of the serving hists interleave nondeterministically — they
//! always measured wall-clock quantities that vary run to run, so no
//! determinism guarantee is lost. Per-replica telemetry flows into the
//! serve RunProfile: a `serve:replica_batches` histogram of which replica
//! cut each batch, `serve:plan_cache:r<i>` hit ratios, and `serve_swap`
//! events.
//!
//! ## Hot-swap
//!
//! `{"cmd": "reload", "path": ...}` (or [`Server::reload`]) builds a full
//! replica set from the new checkpoint **on the connection thread** — the
//! workers keep serving the old model throughout — then canary-diffs the
//! new model against the live one: both generations run the same
//! deterministic canary input, and the max/mean |Δlogit| are reported in
//! the `reloaded` response (the `axnn obs report` drift-style health
//! headline; non-finite canary logits abort the swap). The staged models
//! are published to per-replica slots and a generation counter is bumped;
//! each worker picks its new model up **between batches**, so in-flight
//! batches finish on the old weights and no connection is ever dropped.
//! Concurrent reloads serialize on the swap lock.
//!
//! ## Shutdown
//!
//! `{"cmd": "shutdown"}` (or [`Server::shutdown`]) flips the dispatcher
//! into draining mode: new work is rejected with `"draining"`, the
//! admitted backlog is batched and served, every worker exits on its empty
//! queue, and the acceptor is woken by a loop-back connection — aimed at
//! the loopback IP when the server is bound to a wildcard address, where a
//! connect to `0.0.0.0`/`::` itself would fail and leave the acceptor
//! blocked forever. Connection threads are detached; they exit when their
//! peer hangs up.

use crate::metrics::{
    BatchObservation, JobObservation, MetricsPlane, SnapshotContext, TRACE_DEFAULT_N,
};
use crate::model::{ModelOptions, ServeSpec, ServedModel};
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::queue::{BatchReply, Dispatcher, Job, QueueConfig};
use axnn_data::resize::PreprocessSpec;
use axnn_obs::WindowSpec;
use std::io::{self, BufReader, BufWriter};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Seed of the deterministic canary input the hot-swap health check runs
/// through the old and new model.
pub const CANARY_SEED: u64 = 0xca7a;

/// Hist geometry for per-request queue wait, microseconds.
pub fn queue_wait_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 50_000.0, 64)
}

/// Hist geometry for per-batch compute time, microseconds.
pub fn compute_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 200_000.0, 64)
}

/// Hist geometry for per-request raw-frame preprocessing time,
/// microseconds.
pub fn preprocess_time_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 20_000.0, 64)
}

/// Hist geometry for micro-batch sizes.
pub fn batch_size_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 64.0, 64)
}

/// Hist geometry for queue depth at batch-cut time.
pub fn queue_depth_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::new(0.0, 256.0, 64)
}

/// Hist geometry for the replica index that cut each batch — the
/// per-replica batch counters of the serve profile.
pub fn replica_spec() -> axnn_obs::HistSpec {
    axnn_obs::HistSpec::index(16)
}

/// State guarded by the swap lock: the live canary reference and how many
/// reloads have completed.
struct SwapInner {
    /// Live model's logits on the canary input, refreshed on every swap.
    canary: Vec<f32>,
}

struct Shared {
    dispatcher: Dispatcher,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Build options the server was started with; reloads reuse them (a
    /// hot-swap replaces weights, never the architecture or executor).
    opts: ModelOptions,
    /// One staged-model slot per replica; a worker takes its slot when it
    /// observes a generation bump between batches.
    slots: Vec<Mutex<Option<ServedModel>>>,
    /// Swap generation; bumped once per completed reload.
    generation: AtomicU64,
    /// Serializes reloads and guards the canary reference.
    swap: Mutex<SwapInner>,
    /// Live connection handlers (join handle + a second stream handle).
    /// `Server::join` waits on these after the workers exit, so a drain can
    /// never outrun an unflushed reply — without the join, the process
    /// could exit while a handler still held a response in its write
    /// buffer, and the client would see an unexplained EOF. The stream
    /// handle lets `join` force-close the read half of idle connections
    /// once the drain is complete (every owed reply is flushed by then),
    /// so a silent client cannot hold the join open forever.
    conns: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
    /// Live metrics: trace ids + ring, sliding windows, cumulative totals.
    metrics: MetricsPlane,
    /// How `raw_frame` requests are resized/normalized into model inputs.
    /// Resolved once at checkpoint load (replicas share one spec — a
    /// reload cannot change the input shape, so it never changes).
    preprocess: PreprocessSpec,
}

impl Shared {
    /// Server-level facts the metrics snapshot reports.
    fn snapshot_ctx(&self) -> SnapshotContext {
        SnapshotContext {
            replicas: self.slots.len(),
            generation: self.generation.load(Ordering::SeqCst),
            draining: self.shutdown.load(Ordering::SeqCst),
        }
    }

    /// Starts the drain exactly once and wakes the blocked acceptor with a
    /// loop-back connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.dispatcher.start_drain();
            let _ = TcpStream::connect(wake_addr(self.addr));
        }
    }
}

/// Where to connect to wake the acceptor: the bound address, except that a
/// wildcard bind (`0.0.0.0` / `::`) is not connectable — aim at the
/// matching loopback IP with the bound port instead.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let ip = match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        };
        SocketAddr::new(ip, addr.port())
    } else {
        addr
    }
}

/// A running inference server. Dropping it shuts it down and joins the
/// acceptor and worker threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    input_len: usize,
    classes: usize,
}

impl Server {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// `replicas` model workers built from `spec` under the given queue
    /// configuration. Model-build failures surface as `io::Error`s.
    pub fn start(
        spec: &ServeSpec,
        bind_addr: &str,
        cfg: QueueConfig,
        replicas: usize,
    ) -> io::Result<Server> {
        if replicas == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "need at least one replica",
            ));
        }
        let mut models = spec.build_replicas(replicas).map_err(io::Error::other)?;
        let canary = models[0].canary_logits(CANARY_SEED);
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let input_len = models[0].input_len();
        let classes = models[0].classes();
        let shared = Arc::new(Shared {
            dispatcher: Dispatcher::new(cfg, replicas),
            shutdown: AtomicBool::new(false),
            addr,
            opts: spec.options().clone(),
            slots: (0..replicas).map(|_| Mutex::new(None)).collect(),
            generation: AtomicU64::new(0),
            swap: Mutex::new(SwapInner { canary }),
            conns: Mutex::new(Vec::new()),
            metrics: MetricsPlane::new(replicas, WindowSpec::serve()),
            preprocess: models[0].preprocess_spec().clone(),
        });

        let mut workers = Vec::with_capacity(replicas);
        for (replica, model) in models.drain(..).enumerate() {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{replica}"))
                    .spawn(move || worker_loop(model, replica, &shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || acceptor_loop(listener, &shared, input_len, classes))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
            input_len,
            classes,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Flattened input length one request must carry.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Logits per response.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of replica workers.
    pub fn replicas(&self) -> usize {
        self.shared.dispatcher.replicas()
    }

    /// Completed hot-swap count.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// The live metrics plane (enable/disable recording, e.g. for the
    /// overhead bench).
    pub fn metrics_plane(&self) -> &MetricsPlane {
        &self.shared.metrics
    }

    /// The `{"cmd": "metrics"}` JSON snapshot, in process.
    pub fn metrics_json(&self) -> String {
        self.shared
            .metrics
            .snapshot_json(&self.shared.snapshot_ctx())
    }

    /// The `{"cmd": "trace"}` response body for the last `n` records, in
    /// process.
    pub fn trace_json(&self, n: usize) -> String {
        self.shared.metrics.trace_json(n)
    }

    /// Hot-swaps the served checkpoint in process (the `{"cmd": "reload"}`
    /// path without the wire). Returns the `reloaded` response or the
    /// rejection that aborted the swap.
    pub fn reload(&self, checkpoint_json: &str) -> Response {
        handle_reload(&self.shared, checkpoint_json, self.input_len, self.classes)
    }

    /// Begins the graceful drain and blocks until the acceptor and workers
    /// have exited. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Waits for a remotely initiated shutdown (`{"cmd": "shutdown"}`) to
    /// finish draining — the blocking-serve path of `axnn serve`.
    pub fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers have exited, so every admitted job has sent its reply and
        // `write_frame` flushes per response — any reply a client is owed is
        // either flushed or in a handler's final `write_frame` call. Closing
        // the read half wakes handlers blocked on an idle connection; they
        // finish any in-progress write, observe the EOF, and exit, and only
        // then does `join` return.
        let conns = {
            let mut conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *conns)
        };
        for (_, stream) in &conns {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for (handle, _) in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(mut model: ServedModel, replica: usize, shared: &Shared) {
    // Pre-formatted per-replica labels (the obs discipline: no per-record
    // allocation on the hot path).
    let pc_label = format!("serve:plan_cache:r{replica}");
    let swap_label = format!("serve:r{replica}");
    let mut seen_gen = shared.generation.load(Ordering::SeqCst);
    let mut pc_last = model.plan_cache_stats().unwrap_or_default();
    while let Some(batch) = shared.dispatcher.queue(replica).next_batch() {
        shared.dispatcher.release(batch.jobs.len());
        // Swap point: between batches, never mid-batch. Taking the slot is
        // cheap (one mutex, usually uncontended); the expensive build
        // already happened on the reload thread.
        let gen = shared.generation.load(Ordering::SeqCst);
        if gen != seen_gen {
            if let Some(fresh) = shared.slots[replica]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                model = fresh;
                pc_last = model.plan_cache_stats().unwrap_or_default();
                axnn_obs::event("serve_swap", &swap_label, gen as f64, "picked up new model");
            }
            seen_gen = gen;
        }
        let views: Vec<&[f32]> = batch.jobs.iter().map(|j| j.input.as_slice()).collect();
        let started = Instant::now();
        let outputs = {
            let _s = axnn_obs::span("serve:batch");
            model.forward_batch(&views)
        };
        let compute_us = started.elapsed().as_secs_f64() * 1e6;
        let size = batch.jobs.len();
        axnn_obs::record_value("serve:batch_size", batch_size_spec(), size as f64);
        axnn_obs::record_value(
            "serve:queue_depth",
            queue_depth_spec(),
            batch.depth_at_pop as f64,
        );
        axnn_obs::record_value("serve:compute_us", compute_spec(), compute_us);
        axnn_obs::record_value("serve:replica_batches", replica_spec(), replica as f64);
        let (pc_hits, pc_misses) = if let Some(stats) = model.plan_cache_stats() {
            // Per-replica plan-cache hit ratio, recorded as this batch's
            // delta so the profile's hits/total reflect serving traffic.
            let hits = stats.hits - pc_last.hits;
            let misses = stats.misses - pc_last.misses;
            axnn_obs::record_ratio(&pc_label, hits, hits + misses);
            pc_last = stats;
            (hits, misses)
        } else {
            (0, 0)
        };
        // One metrics-plane touch per batch: queue waits are measured here
        // (before the replies go out, so a trace never races its own
        // record), and the plane assigns the batch id the traces carry.
        let job_obs: Vec<JobObservation> = batch
            .jobs
            .iter()
            .map(|job| JobObservation {
                trace_id: job.trace,
                request_id: job.id,
                admitted_ms: shared.metrics.offset_ms(job.enqueued),
                queue_us: started.duration_since(job.enqueued).as_secs_f64() * 1e6,
            })
            .collect();
        shared.metrics.note_batch(&BatchObservation {
            replica,
            compute_us,
            plan_cache_hits: pc_hits,
            plan_cache_misses: pc_misses,
            jobs: &job_obs,
        });
        for ((job, logits), obs) in batch.jobs.into_iter().zip(outputs).zip(&job_obs) {
            let queue_us = obs.queue_us;
            axnn_obs::record_value("serve:queue_wait_us", queue_wait_spec(), queue_us);
            axnn_obs::record_ratio("serve:rejected", 0, 1);
            // A send error means the connection died while its job was in
            // flight; the batch result is simply dropped for that peer.
            let _ = job.reply.send(BatchReply {
                id: job.id,
                logits,
                queue_us,
                compute_us,
                batch: size,
            });
        }
    }
}

/// Builds, canary-checks and stages a new model set; called with the raw
/// checkpoint JSON (the wire path reads the file first). Runs entirely off
/// the worker threads — serving continues on the old model throughout.
fn handle_reload(
    shared: &Shared,
    checkpoint_json: &str,
    input_len: usize,
    classes: usize,
) -> Response {
    // One reload at a time; the guard also protects the canary reference.
    let mut swap = shared.swap.lock().unwrap_or_else(|e| e.into_inner());
    let reject = |detail: String| Response::Error { id: 0, detail };
    let spec = match ServeSpec::from_json(checkpoint_json, &shared.opts) {
        Ok(spec) => spec,
        Err(e) => return reject(format!("reload rejected: {e}")),
    };
    let replicas = shared.slots.len();
    let mut models = match spec.build_replicas(replicas) {
        Ok(models) => models,
        Err(e) => return reject(format!("reload rejected: {e}")),
    };
    if models[0].input_len() != input_len || models[0].classes() != classes {
        return reject(format!(
            "reload rejected: shape {}→{} / {}→{} classes changed; start a new server instead",
            input_len,
            models[0].input_len(),
            classes,
            models[0].classes(),
        ));
    }
    // Canary health check: the new model must produce finite logits on the
    // deterministic canary input; the old-vs-new deltas are the swap's
    // health headline (reported, not gated — a retrained checkpoint is
    // *supposed* to differ).
    let fresh = models[0].canary_logits(CANARY_SEED);
    if !fresh.iter().all(|v| v.is_finite()) {
        return reject("reload rejected: canary produced non-finite logits".to_string());
    }
    let (mut max_d, mut sum_d) = (0.0f64, 0.0f64);
    for (a, b) in swap.canary.iter().zip(&fresh) {
        let d = (*a as f64 - *b as f64).abs();
        max_d = max_d.max(d);
        sum_d += d;
    }
    let mean_d = sum_d / fresh.len().max(1) as f64;
    for (slot, model) in shared.slots.iter().zip(models.drain(..)) {
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(model);
    }
    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
    swap.canary = fresh;
    axnn_obs::event(
        "serve_reload",
        "serve:swap",
        max_d,
        "checkpoint staged to all replicas",
    );
    Response::Reloaded {
        generation,
        replicas,
        max_abs_delta: max_d,
        mean_abs_delta: mean_d,
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, input_len: usize, classes: usize) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A second handle to the socket, kept out of the spawn closure; it
        // is registered in `shared.conns` so `Server::join` can wait for
        // the handler's last reply to flush, and it doubles as the inline
        // fallback: if thread creation fails (transient EAGAIN under
        // load), the connection is served on the acceptor thread instead
        // of being silently dropped — the client sees a slow reply, never
        // an unexplained EOF.
        let Ok(second) = stream.try_clone() else {
            continue;
        };
        let handler_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_conn(stream, &handler_shared, input_len, classes));
        match spawned {
            Ok(handle) => {
                let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
                conns.retain(|(h, _)| !h.is_finished());
                conns.push((handle, second));
            }
            Err(_) => handle_conn(second, shared, input_len, classes),
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Shared, input_len: usize, classes: usize) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let response = dispatch(&payload, shared, input_len, classes);
        if write_frame(&mut writer, response.to_json().as_bytes()).is_err() {
            break;
        }
    }
}

fn dispatch(payload: &[u8], shared: &Shared, input_len: usize, classes: usize) -> Response {
    let req = match Request::parse(payload) {
        Ok(req) => req,
        Err(detail) => return Response::Error { id: 0, detail },
    };
    if let Some(cmd) = req.cmd.as_deref() {
        return match cmd {
            "ping" => Response::Control { status: "pong" },
            "info" => Response::Info {
                input_len,
                classes,
                preprocess: shared.preprocess.clone(),
            },
            // Read-only snapshots, answered before admission control: they
            // keep working on a draining or overloaded server.
            "metrics" => match req.format.as_deref() {
                None | Some("json") => Response::Snapshot {
                    json: shared.metrics.snapshot_json(&shared.snapshot_ctx()),
                },
                Some("prometheus") => Response::Snapshot {
                    json: shared.metrics.prometheus_json(&shared.snapshot_ctx()),
                },
                Some(other) => Response::Error {
                    id: req.id,
                    detail: format!("unknown metrics format '{other}'"),
                },
            },
            "trace" => Response::Snapshot {
                json: shared.metrics.trace_json(req.n.unwrap_or(TRACE_DEFAULT_N)),
            },
            "shutdown" => {
                shared.begin_shutdown();
                Response::Control { status: "draining" }
            }
            "reload" => {
                let Some(path) = req.path.as_deref() else {
                    return Response::Error {
                        id: req.id,
                        detail: "reload needs a 'path'".to_string(),
                    };
                };
                match std::fs::read_to_string(path) {
                    Ok(json) => handle_reload(shared, &json, input_len, classes),
                    Err(e) => Response::Error {
                        id: req.id,
                        detail: format!("reload rejected: {path}: {e}"),
                    },
                }
            }
            other => Response::Error {
                id: req.id,
                detail: format!("unknown command '{other}'"),
            },
        };
    }
    // Raw frames are preprocessed here on the connection thread — a
    // pipelined stage *before* micro-batching, so preprocessing of one
    // request overlaps the compute of others and the queue/compute path
    // below is identical for both request forms.
    let (input, preprocess_us) = match req.raw_frame {
        Some(frame) => {
            if !req.input.is_empty() {
                return Response::Error {
                    id: req.id,
                    detail: "request carries both 'input' and 'raw_frame'".to_string(),
                };
            }
            let started = Instant::now();
            let decoded = {
                let _s = axnn_obs::span("serve:preprocess");
                shared.preprocess.apply(&frame)
            };
            let input = match decoded {
                Ok(input) => input,
                Err(detail) => return Response::Error { id: req.id, detail },
            };
            let us = started.elapsed().as_secs_f64() * 1e6;
            axnn_obs::record_value("serve:preprocess_us", preprocess_time_spec(), us);
            shared.metrics.note_preprocess(us);
            (input, us)
        }
        None => (req.input, 0.0),
    };
    if input.len() != input_len {
        return Response::Error {
            id: req.id,
            detail: format!("input length {} != {input_len}", input.len()),
        };
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        id: req.id,
        // Placeholder: the real trace id is drawn from the server-wide
        // sequence inside the queue push, under the queue mutex, so ids
        // are monotonic in admission order and rejected requests never
        // consume one (the id space stays dense).
        trace: 0,
        input,
        enqueued: Instant::now(),
        reply: tx,
    };
    match shared.dispatcher.push(job, shared.metrics.trace_seq()) {
        Err(e) => {
            axnn_obs::record_ratio("serve:rejected", 1, 1);
            shared.metrics.note_rejected();
            Response::Rejected {
                id: req.id,
                reason: e.reason(),
            }
        }
        Ok(_) => match rx.recv() {
            Ok(r) => Response::Ok {
                id: r.id,
                logits: r.logits,
                queue_us: r.queue_us,
                compute_us: r.compute_us,
                preprocess_us,
                batch: r.batch,
            },
            Err(_) => Response::Error {
                id: req.id,
                detail: "worker dropped the job".to_string(),
            },
        },
    }
}
