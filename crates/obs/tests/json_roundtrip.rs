//! Validates the hand-written [`RunProfile::to_json`] emitter against a
//! real JSON parser: for proptest-generated labels and values, `serde_json`
//! must parse the emitted line back to the original profile — including
//! schema v1↔v2 round-trips (v1 lines carry no `schema_version`/health
//! sections and parse with defaults).
//!
//! String fields may contain quotes, backslashes, control characters and
//! non-ASCII text; f64 fields round-trip exactly because the emitter prints
//! the shortest decimal that re-parses to the same bits (`total_ms` is the
//! one `{:.6}`-formatted exception, compared with a tolerance).

use axnn_obs::{
    CounterTotals, EventRecord, HistRecord, RatioRecord, RunProfile, SpanRecord, SCHEMA_VERSION,
};
use proptest::prelude::*;

/// Any finite f64 in a range wide enough to exercise exponents both ways.
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12f64..1e12f64,
        -1.0f64..1.0f64,
        Just(0.0),
        Just(-0.0),
        Just(1024.0),
    ]
}

fn arb_span() -> impl Strategy<Value = SpanRecord> {
    (any::<String>(), any::<u64>(), 0u64..1_000_000_000).prop_map(|(name, count, us)| SpanRecord {
        name,
        count,
        // Whole microseconds survive the emitter's {:.6} ms formatting.
        total_ms: us as f64 / 1e3,
    })
}

fn arb_hist() -> impl Strategy<Value = HistRecord> {
    (
        any::<String>(),
        finite_f64(),
        1.0f64..1e9,
        prop::collection::vec(any::<u64>(), 0..8),
        any::<u64>(),
        any::<u64>(),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(
            |(name, lo, width, counts, underflow, overflow, (mean, std, min, max))| {
                let count = counts.iter().sum::<u64>() + underflow + overflow;
                HistRecord {
                    name,
                    lo,
                    hi: lo + width,
                    counts,
                    underflow,
                    overflow,
                    count,
                    mean,
                    std: std.abs(),
                    min,
                    max,
                }
            },
        )
}

fn arb_ratio() -> impl Strategy<Value = RatioRecord> {
    (any::<String>(), any::<u64>(), any::<u64>()).prop_map(|(name, hits, total)| RatioRecord {
        name,
        hits,
        total,
    })
}

fn arb_event() -> impl Strategy<Value = EventRecord> {
    (
        any::<u64>(),
        any::<String>(),
        any::<String>(),
        finite_f64(),
        any::<String>(),
    )
        .prop_map(|(seq, kind, label, value, detail)| EventRecord {
            seq,
            kind,
            label,
            value,
            detail,
        })
}

fn arb_profile() -> impl Strategy<Value = RunProfile> {
    (
        any::<String>(),
        any::<[u64; 9]>(),
        prop::collection::vec(arb_span(), 0..5),
        prop::collection::vec(arb_hist(), 0..4),
        prop::collection::vec(arb_ratio(), 0..4),
        prop::collection::vec(arb_event(), 0..3),
    )
        .prop_map(|(label, c, spans, hists, health, events)| RunProfile {
            schema_version: SCHEMA_VERSION,
            label,
            counters: CounterTotals {
                approx_muls: c[0],
                lut_bytes: c[1],
                gemm_macs: c[2],
                im2col_bytes: c[3],
                plan_cache_hits: c[4],
                plan_cache_misses: c[5],
                search_evals: c[6],
                search_cache_hits: c[7],
                search_cache_misses: c[8],
            },
            spans,
            hists,
            health,
            events,
        })
}

/// Structural equality with a tolerance on `total_ms` (the only field not
/// emitted as a shortest-round-trip decimal).
fn assert_profiles_match(a: &RunProfile, b: &RunProfile) {
    assert_eq!(a.schema_version, b.schema_version);
    assert_eq!(a.label, b.label);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.spans.len(), b.spans.len());
    for (x, y) in a.spans.iter().zip(&b.spans) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.count, y.count);
        assert!(
            (x.total_ms - y.total_ms).abs() < 1e-6,
            "{} vs {}",
            x.total_ms,
            y.total_ms
        );
    }
    assert_eq!(a.hists, b.hists, "hist fields must round-trip exactly");
    assert_eq!(a.health, b.health);
    assert_eq!(a.events, b.events);
}

proptest! {
    /// serde_json parses every emitted v2 line back to the same profile.
    #[test]
    fn to_json_round_trips_through_serde_json(p in arb_profile()) {
        let line = p.to_json();
        prop_assert!(!line.contains('\n'));
        let back: RunProfile = serde_json::from_str(&line)
            .map_err(|e| TestCaseError::fail(format!("emitted JSON rejected: {e}\n{line}")))?;
        assert_profiles_match(&p, &back);
    }

    /// The dependency-free reader agrees with serde_json on every emitted
    /// line (it is what `axnn obs report|diff` actually parse with).
    #[test]
    fn from_json_matches_serde_json(p in arb_profile()) {
        let line = p.to_json();
        let hand = RunProfile::from_json(&line)
            .map_err(|e| TestCaseError::fail(format!("hand reader rejected: {e}\n{line}")))?;
        assert_profiles_match(&p, &hand);
        let via_serde: RunProfile = serde_json::from_str(&line).expect("serde parses");
        assert_profiles_match(&hand, &via_serde);
    }

    /// The emitted line is also valid generic JSON with the v2 sections.
    #[test]
    fn emitted_json_has_v2_sections(p in arb_profile()) {
        let v: serde_json::Value = serde_json::from_str(&p.to_json()).expect("valid JSON");
        prop_assert_eq!(v["schema_version"].as_u64(), Some(SCHEMA_VERSION as u64));
        prop_assert!(v["hists"].is_array());
        prop_assert!(v["health"].is_array());
        prop_assert!(v["events"].is_array());
    }

    /// v1 lines (no schema_version, no health sections) still parse, with
    /// defaults; re-emitting yields a v1-tagged line that parses again.
    #[test]
    fn v1_lines_parse_with_defaults(
        label in any::<String>(),
        c in any::<[u64; 4]>(),
        spans in prop::collection::vec(arb_span(), 0..4),
    ) {
        // Emit in the exact PR 2 (v1) wire format.
        let v1 = RunProfile {
            schema_version: 1,
            label,
            counters: CounterTotals {
                approx_muls: c[0],
                lut_bytes: c[1],
                gemm_macs: c[2],
                im2col_bytes: c[3],
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                search_evals: 0,
                search_cache_hits: 0,
                search_cache_misses: 0,
            },
            spans,
            hists: vec![],
            health: vec![],
            events: vec![],
        };
        let line = v1.to_json();
        let legacy = {
            // Strip the v2-only keys to fabricate a genuine v1 line.
            let mut v: serde_json::Value = serde_json::from_str(&line).unwrap();
            let obj = v.as_object_mut().unwrap();
            obj.remove("schema_version");
            obj.remove("hists");
            obj.remove("health");
            obj.remove("events");
            serde_json::to_string(&v).unwrap()
        };
        let back: RunProfile = serde_json::from_str(&legacy)
            .map_err(|e| TestCaseError::fail(format!("v1 line rejected: {e}\n{legacy}")))?;
        prop_assert_eq!(back.schema_version, 1);
        prop_assert!(back.hists.is_empty());
        prop_assert!(back.health.is_empty());
        prop_assert!(back.events.is_empty());
        assert_profiles_match(&v1, &back);
        // And the v1-tagged re-emission parses again (v1↔v2 round trip).
        let again: RunProfile = serde_json::from_str(&back.to_json()).unwrap();
        assert_profiles_match(&back, &again);
    }
}
