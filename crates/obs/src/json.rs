//! A minimal JSON reader to complement the hand-written emitters.
//!
//! The workspace *emits* JSON by hand (see [`crate::RunProfile::to_json`])
//! so artifacts stay dependency-free; this module is the matching *reader*.
//! It parses a byte slice into a [`JsonValue`] tree with no external
//! crates, which keeps parsing available in fully offline builds and on
//! the serving path, where request decoding must not depend on an
//! environment-provided serializer.
//!
//! Design points:
//!
//! - Numbers keep their **raw token** ([`JsonValue::Num`]); callers parse
//!   them as `f32`/`f64`/`u64` on demand. Rust's `Display` for floats
//!   prints the shortest decimal that round-trips, and `str::parse`
//!   recovers the exact bits, so `f32 -> emit -> parse -> f32` is
//!   bit-identical — the determinism contract extends through JSON.
//! - Objects preserve insertion order in a `Vec` (no hashing, stable
//!   iteration, duplicate keys resolve to the *first* occurrence).
//! - A hard nesting-depth cap and a byte-length cap on the caller's side
//!   (see `axnn-serve`'s frame limit) keep adversarial inputs from
//!   exhausting the stack; errors carry a byte offset for diagnostics.
//!
//! # Example
//!
//! ```
//! use axnn_obs::json::JsonValue;
//!
//! let v = JsonValue::parse(br#"{"id": 7, "xs": [1.5, -2.0]}"#).unwrap();
//! assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(7));
//! let xs: Vec<f32> = v.get("xs").unwrap().f32_array().unwrap();
//! assert_eq!(xs, vec![1.5, -2.0]);
//! ```

use std::fmt;

/// Maximum nesting depth accepted by the parser. Deeper documents are
/// rejected rather than risking stack exhaustion on crafted input.
pub const MAX_DEPTH: usize = 96;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Raw number token as it appeared in the input (e.g. `-1.5e3`).
    Num(String),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key/value pairs in document order.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl JsonError {
    /// Byte offset into the input where parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &[u8]) -> Result<JsonValue, JsonError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first occurrence wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number token parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `f32` (bit-exact for tokens emitted from
    /// an `f32` via `Display`).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `u64` (rejects signs, fractions, exponents).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of numbers decoded as `f32`, or `None` if this is not an
    /// array or any element is not a number.
    pub fn f32_array(&self) -> Option<Vec<f32>> {
        self.as_array()?.iter().map(JsonValue::as_f32).collect()
    }

    /// An array of numbers decoded as `usize`.
    pub fn usize_array(&self) -> Option<Vec<usize>> {
        self.as_array()?.iter().map(JsonValue::as_usize).collect()
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8], v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.input[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the escape already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input came from &[u8], so
                    // validate rather than assume.
                    let rest = &self.input[self.pos..];
                    let take = rest.iter().take(4).copied().collect::<Vec<_>>();
                    match std::str::from_utf8(&take) {
                        Ok(s) => {
                            let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        Err(e) if e.valid_up_to() > 0 => {
                            let c = std::str::from_utf8(&take[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty prefix");
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.input.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.input[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("number has no digits"));
        }
        if self.pos - digits_from > 1 && self.input[digits_from] == b'0' {
            return Err(self.err("number has a leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("fraction has no digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("exponent has no digits"));
            }
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            .expect("number tokens are ascii")
            .to_string();
        Ok(JsonValue::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v =
            JsonValue::parse(br#"{"a": [1, 2.5, -3e2], "b": "x", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn f32_round_trips_bit_exactly() {
        for bits in [
            0x0000_0001u32,
            0x3f80_0000,
            0x7f7f_ffff,
            0xc0a0_0000,
            0x0034_1234,
        ] {
            let x = f32::from_bits(bits);
            let doc = format!("[{x}]");
            let v = JsonValue::parse(doc.as_bytes()).unwrap();
            let back = v.as_array().unwrap()[0].as_f32().unwrap();
            assert_eq!(back.to_bits(), bits, "{x} must round-trip");
        }
    }

    #[test]
    fn string_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\ndé😀""#.as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9}\u{1f600}"));
        // Raw multi-byte UTF-8 passes through.
        let v = JsonValue::parse("\"caf\u{e9}\"".as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"01",
            br#""\x""#,
            b"1 2",
            b"tru",
            b"[1 2]",
            b"\"unterminated",
            b"-",
            b"1.",
            b"1e",
        ] {
            assert!(
                JsonValue::parse(bad).is_err(),
                "{:?} should be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = JsonValue::parse(deep.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("MAX_DEPTH"));
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(JsonValue::parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn duplicate_keys_resolve_to_first_and_order_is_kept() {
        let v = JsonValue::parse(br#"{"k": 1, "k": 2, "z": 3, "a": 4}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(1));
        match &v {
            JsonValue::Obj(m) => {
                let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["k", "k", "z", "a"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = JsonValue::parse(b"[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
    }

    #[test]
    fn parses_profile_emitter_output() {
        // The reader must accept what the workspace's own emitters produce.
        crate::reset();
        crate::set_enabled(true);
        {
            let _s = crate::span("json:demo");
        }
        crate::count(crate::Counter::GemmMacs, 17);
        let profile = crate::RunProfile::capture("json-reader-test");
        crate::set_enabled(false);
        let v = JsonValue::parse(profile.to_json().as_bytes()).unwrap();
        assert_eq!(
            v.get("label").and_then(JsonValue::as_str),
            Some("json-reader-test")
        );
        assert!(v.get("spans").unwrap().as_array().unwrap().len() == 1);
    }
}
