//! # axnn-obs
//!
//! A lightweight observability layer for the ApproxNN workspace: scoped
//! timers ([`span`]), monotonic operation counters ([`count`]), numeric-
//! health telemetry (streaming [`Hist`]ograms, clip/saturation ratios,
//! drift [`event`]s), and a [`RunProfile`] snapshot that serializes to
//! JSONL/CSV for the `results/` trajectory.
//!
//! ## Design constraints
//!
//! - **The disabled path costs nothing measurable.** Profiling is off by
//!   default; every instrumentation site starts with one relaxed atomic
//!   load ([`enabled`] / [`health_enabled`]) and bails out before
//!   allocating, formatting, or reading the clock. The `gemm_threads`
//!   bench records the measured enabled-vs-disabled overhead as
//!   `profile_overhead_pct` and `hist_overhead_pct`.
//! - **Profiling never touches numerics.** Instrumentation only *observes*
//!   — all kernels compute exactly the same bits whether profiling is on or
//!   off (asserted by `tests/thread_invariance.rs`).
//! - **Everything aggregates deterministically under `axnn_par`.** Counter
//!   increments are order-insensitive integer sums into process-global
//!   atomics, and the hot kernels derive their increments *analytically*
//!   outside the parallel region. Histograms carry order-sensitive f64
//!   moments, so health recording happens on the coordinating thread only
//!   (or per-shard histograms merged in shard order — see [`hist`]); totals
//!   are bit-identical for any thread count.
//!
//! ## Two switches
//!
//! [`set_enabled`] turns on the *work* telemetry (spans + counters);
//! [`set_health_enabled`] turns on the *numeric-health* telemetry
//! (histograms, ratios, events), which is costlier because the ε samples
//! need an exact reference GEMM. The flags are independent; `axnn pipeline
//! --profile` turns on both.
//!
//! ## Example
//!
//! ```
//! axnn_obs::reset();
//! axnn_obs::set_enabled(true);
//! axnn_obs::set_health_enabled(true);
//! {
//!     let _s = axnn_obs::span("demo");
//!     axnn_obs::count(axnn_obs::Counter::GemmMacs, 1024);
//! }
//! axnn_obs::record_value("eps:demo", axnn_obs::HistSpec::eps(), 2.5);
//! axnn_obs::record_ratio("sat_x:demo", 3, 100);
//! axnn_obs::set_enabled(false);
//! axnn_obs::set_health_enabled(false);
//! let profile = axnn_obs::RunProfile::capture("doc-example");
//! assert_eq!(profile.counters.gemm_macs, 1024);
//! assert_eq!(profile.spans[0].name, "demo");
//! assert_eq!(profile.hists[0].name, "eps:demo");
//! assert_eq!(profile.health[0].hits, 3);
//! ```

pub mod hist;
pub mod json;
mod profile;
pub mod window;

pub use hist::{Hist, HistSpec, SpecMismatch};
pub use profile::{
    CounterTotals, EventRecord, HistRecord, RatioRecord, RunProfile, SpanRecord, SCHEMA_VERSION,
};
pub use window::{CounterWindow, DeltaTracker, HistWindow, WindowSpec};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HEALTH: AtomicBool = AtomicBool::new(false);

/// Bumped by every [`reset`] so in-flight [`Span`]s opened before the reset
/// discard themselves instead of folding stale timing into the fresh
/// registry.
static RESET_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Whether span/counter profiling is currently enabled. One relaxed atomic
/// load — this is the only cost instrumentation sites pay when profiling is
/// off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/counter profiling on or off (process-global). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether numeric-health telemetry (histograms, ratios, events) is
/// enabled. Same contract as [`enabled`]: one relaxed load when off.
#[inline]
pub fn health_enabled() -> bool {
    HEALTH.load(Ordering::Relaxed)
}

/// Turns numeric-health telemetry on or off (process-global). Off by
/// default, independent of [`set_enabled`].
pub fn set_health_enabled(on: bool) {
    HEALTH.store(on, Ordering::Relaxed);
}

/// The monotonic operation counters the workspace tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Approximate multiplications executed (LUT-served products; zero
    /// weight codes are skipped by the kernels and not counted).
    ApproxMuls,
    /// Bytes served out of multiplier LUT rows (4 bytes per approximate
    /// product).
    LutBytes,
    /// Exact f32 GEMM multiply-accumulates (forward and backward).
    GemmMacs,
    /// Bytes moved by im2col / col2im lowering.
    Im2colBytes,
    /// Compiled-graph forward calls that reused a cached buffer plan.
    PlanCacheHits,
    /// Compiled-graph forward calls that planned buffers for a new shape.
    PlanCacheMisses,
    /// Candidate assignments actually scored by the heterogeneous search
    /// (inference + energy model; cache hits are not counted here).
    SearchEvals,
    /// Search candidates answered from the assignment evaluation cache.
    SearchCacheHits,
    /// Search candidates missing the evaluation cache (scored fresh).
    SearchCacheMisses,
}

const N_COUNTERS: usize = 9;

static TOTALS: [AtomicU64; N_COUNTERS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Adds `n` to a counter when profiling is enabled; a no-op otherwise.
///
/// The sum is order-insensitive, so concurrent increments from `axnn_par`
/// workers aggregate deterministically for any thread count — provided the
/// *increments themselves* do not depend on the partition (derive them from
/// the workload, not from per-thread state).
#[inline]
pub fn count(counter: Counter, n: u64) {
    if enabled() {
        TOTALS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of one counter.
pub fn counter(counter: Counter) -> u64 {
    TOTALS[counter as usize].load(Ordering::Relaxed)
}

/// Snapshot of all counters.
pub fn counter_totals() -> CounterTotals {
    CounterTotals {
        approx_muls: counter(Counter::ApproxMuls),
        lut_bytes: counter(Counter::LutBytes),
        gemm_macs: counter(Counter::GemmMacs),
        im2col_bytes: counter(Counter::Im2colBytes),
        plan_cache_hits: counter(Counter::PlanCacheHits),
        plan_cache_misses: counter(Counter::PlanCacheMisses),
        search_evals: counter(Counter::SearchEvals),
        search_cache_hits: counter(Counter::SearchCacheHits),
        search_cache_misses: counter(Counter::SearchCacheMisses),
    }
}

/// Accumulated statistics of one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanStat {
    count: u64,
    total_ns: u128,
}

/// Hit/total pair behind a [`RatioRecord`] (e.g. saturated codes / codes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RatioStat {
    hits: u64,
    total: u64,
}

fn span_registry() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn hist_registry() -> &'static Mutex<BTreeMap<String, Hist>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Hist>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn ratio_registry() -> &'static Mutex<BTreeMap<String, RatioStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, RatioStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn event_log() -> &'static Mutex<Vec<EventRecord>> {
    static LOG: OnceLock<Mutex<Vec<EventRecord>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears all counters, span statistics, histograms, ratios and events
/// (typically before a run that will be captured into a [`RunProfile`]),
/// and bumps the reset epoch so spans still open across the reset are
/// discarded on drop instead of leaking stale timing into the new scope.
pub fn reset() {
    RESET_EPOCH.fetch_add(1, Ordering::Relaxed);
    for t in &TOTALS {
        t.store(0, Ordering::Relaxed);
    }
    lock(span_registry()).clear();
    lock(hist_registry()).clear();
    lock(ratio_registry()).clear();
    lock(event_log()).clear();
}

/// Records one value into the histogram registered under `label`, creating
/// it with `spec` on first use. A no-op unless [`health_enabled`].
///
/// Call from the coordinating thread only (the moments are order-sensitive;
/// see [`hist`] for the per-shard merge discipline).
pub fn record_value(label: &str, spec: HistSpec, x: f64) {
    if !health_enabled() {
        return;
    }
    let mut reg = lock(hist_registry());
    reg.entry(label.to_string())
        .or_insert_with(|| Hist::new(spec))
        .record(x);
}

/// Records a batch of values under `label` with one registry lock.
/// A no-op unless [`health_enabled`].
pub fn record_values(label: &str, spec: HistSpec, xs: impl IntoIterator<Item = f64>) {
    if !health_enabled() {
        return;
    }
    let mut reg = lock(hist_registry());
    reg.entry(label.to_string())
        .or_insert_with(|| Hist::new(spec))
        .record_all(xs);
}

/// Merges a locally accumulated histogram (e.g. a per-shard `Hist`) into
/// the registry under `label`. A no-op unless [`health_enabled`].
pub fn merge_hist(label: &str, h: &Hist) {
    if !health_enabled() {
        return;
    }
    let mut reg = lock(hist_registry());
    reg.entry(label.to_string())
        .or_insert_with(|| Hist::new(h.spec()))
        .merge(h);
}

/// Adds `hits` out of `total` observations to the ratio registered under
/// `label` (clip rates, K-mask coverage, ...). A no-op unless
/// [`health_enabled`].
pub fn record_ratio(label: &str, hits: u64, total: u64) {
    if !health_enabled() {
        return;
    }
    let mut reg = lock(ratio_registry());
    let r = reg.entry(label.to_string()).or_default();
    r.hits += hits;
    r.total += total;
}

/// Upper bound on retained events: a runaway emitter cannot grow the log
/// (and with it every captured profile) without bound. Real runs stay far
/// below this — `eps_drift` trips at most once per monitor.
const MAX_EVENTS: usize = 1024;

/// Appends a discrete event (e.g. an ε-drift trip) to the event log.
/// A no-op unless [`health_enabled`]; events past [`MAX_EVENTS`] are
/// dropped.
pub fn event(kind: &str, label: &str, value: f64, detail: &str) {
    if !health_enabled() {
        return;
    }
    let mut log = lock(event_log());
    if log.len() >= MAX_EVENTS {
        return;
    }
    let seq = log.len() as u64;
    log.push(EventRecord {
        seq,
        kind: kind.to_string(),
        label: label.to_string(),
        value,
        detail: detail.to_string(),
    });
}

/// Snapshot of one registered histogram, or `None` if the label is absent.
pub fn hist_snapshot(label: &str) -> Option<Hist> {
    lock(hist_registry()).get(label).cloned()
}

/// Snapshots every histogram whose label starts with `prefix`, in label
/// order — the ε-drift monitor pools the `ge_res:` family this way.
pub fn hists_with_prefix(prefix: &str) -> Vec<(String, Hist)> {
    lock(hist_registry())
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, h)| (name.clone(), h.clone()))
        .collect()
}

/// A scoped timer: measures from construction to drop and folds the elapsed
/// time into the process-global registry under its label.
///
/// Construct through [`span`] or [`span2`]; when profiling is disabled the
/// guard is inert (no clock read, no allocation, no lock). A span that
/// outlives a [`reset`] discards itself on drop: its timing belongs to the
/// previous epoch, not the fresh registry.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    state: Option<(String, Instant, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((label, start, epoch)) = self.state.take() {
            if epoch != RESET_EPOCH.load(Ordering::Relaxed) {
                return;
            }
            let elapsed = start.elapsed().as_nanos();
            let mut reg = lock(span_registry());
            let stat = reg.entry(label).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
        }
    }
}

/// Opens a span under `label`. Inert when profiling is disabled.
#[inline]
pub fn span(label: &str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    Span {
        state: Some((
            label.to_string(),
            Instant::now(),
            RESET_EPOCH.load(Ordering::Relaxed),
        )),
    }
}

/// Opens a span under the two-part label `prefix:name` (the per-layer
/// convention: `fwd:conv3x3(16->32)/s1g1`). Formats only when enabled.
///
/// Per-call formatting allocates; hot per-layer sites pre-format the full
/// label once at layer construction (`GemmCore::fwd_span`) and call
/// [`span`] with it instead.
#[inline]
pub fn span2(prefix: &str, name: &str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    Span {
        state: Some((
            format!("{prefix}:{name}"),
            Instant::now(),
            RESET_EPOCH.load(Ordering::Relaxed),
        )),
    }
}

/// Sorted snapshot of the span registry as serializable records.
pub(crate) fn span_records() -> Vec<SpanRecord> {
    let reg = lock(span_registry());
    reg.iter()
        .map(|(name, stat)| SpanRecord {
            name: name.clone(),
            count: stat.count,
            total_ms: stat.total_ns as f64 / 1e6,
        })
        .collect()
}

/// Sorted snapshot of the histogram registry as serializable records.
pub(crate) fn hist_records() -> Vec<HistRecord> {
    let reg = lock(hist_registry());
    reg.iter().map(|(name, h)| h.to_record(name)).collect()
}

/// Sorted snapshot of the ratio registry as serializable records.
pub(crate) fn ratio_records() -> Vec<RatioRecord> {
    let reg = lock(ratio_registry());
    reg.iter()
        .map(|(name, r)| RatioRecord {
            name: name.clone(),
            hits: r.hits,
            total: r.total,
        })
        .collect()
}

/// Snapshot of the event log in emission order.
pub(crate) fn event_records() -> Vec<EventRecord> {
    lock(event_log()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The enable flags, counters and registries are process-global;
    /// serialize the tests that mutate them.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = serial();
        reset();
        set_enabled(false);
        set_health_enabled(false);
        count(Counter::ApproxMuls, 42);
        {
            let _s = span("ignored");
        }
        record_value("h", HistSpec::eps(), 1.0);
        record_ratio("r", 1, 2);
        event("kind", "label", 0.0, "");
        assert_eq!(counter(Counter::ApproxMuls), 0);
        assert!(span_records().is_empty());
        assert!(hist_records().is_empty());
        assert!(ratio_records().is_empty());
        assert!(event_records().is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = serial();
        reset();
        set_enabled(true);
        count(Counter::GemmMacs, 10);
        count(Counter::GemmMacs, 5);
        count(Counter::LutBytes, 7);
        set_enabled(false);
        assert_eq!(counter(Counter::GemmMacs), 15);
        assert_eq!(counter(Counter::LutBytes), 7);
        let totals = counter_totals();
        assert_eq!(totals.gemm_macs, 15);
        assert_eq!(totals.lut_bytes, 7);
        assert_eq!(totals.approx_muls, 0);
        reset();
        assert_eq!(counter_totals(), CounterTotals::default());
    }

    #[test]
    fn spans_fold_by_label_in_sorted_order() {
        let _g = serial();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("b");
        }
        {
            let _s = span2("a", "layer");
        }
        set_enabled(false);
        let records = span_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "a:layer");
        assert_eq!(records[0].count, 1);
        assert_eq!(records[1].name, "b");
        assert_eq!(records[1].count, 3);
        assert!(records[1].total_ms >= 0.0);
    }

    #[test]
    fn span_open_across_reset_is_discarded() {
        // Regression: a Span opened before reset() used to fold its stale
        // timing into the fresh registry on drop.
        let _g = serial();
        reset();
        set_enabled(true);
        let stale = span("stale");
        reset();
        drop(stale);
        set_enabled(false);
        assert!(
            span_records().is_empty(),
            "a span from a previous epoch must not survive reset()"
        );
    }

    #[test]
    fn span_closed_within_epoch_still_folds() {
        let _g = serial();
        reset();
        set_enabled(true);
        {
            let _s = span("fresh");
        }
        set_enabled(false);
        assert_eq!(span_records().len(), 1);
        reset();
    }

    #[test]
    fn health_registries_accumulate() {
        let _g = serial();
        reset();
        set_health_enabled(true);
        record_value("eps:a", HistSpec::eps(), 3.0);
        record_values("eps:a", HistSpec::eps(), [1.0, -1.0]);
        let mut local = Hist::new(HistSpec::eps());
        local.record(5.0);
        merge_hist("eps:a", &local);
        record_ratio("sat:a", 2, 10);
        record_ratio("sat:a", 1, 10);
        event("eps_drift", "trunc5", 2.0, "rms 2x fit");
        set_health_enabled(false);

        let h = hist_snapshot("eps:a").expect("histogram exists");
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.0);
        let ratios = ratio_records();
        assert_eq!(ratios.len(), 1);
        assert_eq!((ratios[0].hits, ratios[0].total), (3, 20));
        let events = event_records();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "eps_drift");
        assert_eq!(events[0].seq, 0);
        assert_eq!(hists_with_prefix("eps:").len(), 1);
        assert!(hists_with_prefix("zzz:").is_empty());
        reset();
        assert!(hist_records().is_empty());
        assert!(hist_snapshot("eps:a").is_none());
    }

    #[test]
    fn event_log_is_bounded() {
        let _g = serial();
        reset();
        set_health_enabled(true);
        for i in 0..MAX_EVENTS + 8 {
            event("spam", "x", i as f64, "");
        }
        set_health_enabled(false);
        let events = event_records();
        assert_eq!(events.len(), MAX_EVENTS);
        assert_eq!(events.last().expect("full log").seq, MAX_EVENTS as u64 - 1);
        reset();
        assert!(event_records().is_empty());
    }

    #[test]
    fn counters_sum_identically_across_thread_interleavings() {
        let _g = serial();
        reset();
        set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        count(Counter::ApproxMuls, 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread");
        }
        set_enabled(false);
        assert_eq!(counter(Counter::ApproxMuls), 4 * 1000 * 3);
    }
}
