//! # axnn-obs
//!
//! A lightweight observability layer for the ApproxNN workspace: scoped
//! timers ([`span`]), monotonic operation counters ([`count`]), and a
//! [`RunProfile`] snapshot that serializes to JSONL/CSV for the `results/`
//! trajectory.
//!
//! ## Design constraints
//!
//! - **The disabled path costs nothing measurable.** Profiling is off by
//!   default; every instrumentation site starts with one relaxed atomic
//!   load ([`enabled`]) and bails out before allocating, formatting, or
//!   reading the clock. The `gemm_threads` bench records the measured
//!   enabled-vs-disabled overhead as `profile_overhead_pct`.
//! - **Profiling never touches numerics.** Instrumentation only *observes*
//!   — all kernels compute exactly the same bits whether profiling is on or
//!   off (asserted by `tests/thread_invariance.rs`).
//! - **Counters aggregate deterministically under `axnn_par`.** Counter
//!   increments are order-insensitive integer sums into process-global
//!   atomics, and the hot kernels derive their increments *analytically*
//!   outside the parallel region (e.g. `nonzero_weights × columns` for the
//!   approximate GEMM), so totals are bit-identical for any thread count.
//!
//! ## Example
//!
//! ```
//! axnn_obs::reset();
//! axnn_obs::set_enabled(true);
//! {
//!     let _s = axnn_obs::span("demo");
//!     axnn_obs::count(axnn_obs::Counter::GemmMacs, 1024);
//! }
//! axnn_obs::set_enabled(false);
//! let profile = axnn_obs::RunProfile::capture("doc-example");
//! assert_eq!(profile.counters.gemm_macs, 1024);
//! assert_eq!(profile.spans[0].name, "demo");
//! assert_eq!(profile.spans[0].count, 1);
//! ```

mod profile;

pub use profile::{CounterTotals, RunProfile, SpanRecord};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently enabled. One relaxed atomic load — this
/// is the only cost instrumentation sites pay when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off (process-global). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The monotonic operation counters the workspace tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Approximate multiplications executed (LUT-served products; zero
    /// weight codes are skipped by the kernels and not counted).
    ApproxMuls,
    /// Bytes served out of multiplier LUT rows (4 bytes per approximate
    /// product).
    LutBytes,
    /// Exact f32 GEMM multiply-accumulates (forward and backward).
    GemmMacs,
    /// Bytes moved by im2col / col2im lowering.
    Im2colBytes,
}

const N_COUNTERS: usize = 4;

static TOTALS: [AtomicU64; N_COUNTERS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Adds `n` to a counter when profiling is enabled; a no-op otherwise.
///
/// The sum is order-insensitive, so concurrent increments from `axnn_par`
/// workers aggregate deterministically for any thread count — provided the
/// *increments themselves* do not depend on the partition (derive them from
/// the workload, not from per-thread state).
#[inline]
pub fn count(counter: Counter, n: u64) {
    if enabled() {
        TOTALS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of one counter.
pub fn counter(counter: Counter) -> u64 {
    TOTALS[counter as usize].load(Ordering::Relaxed)
}

/// Snapshot of all counters.
pub fn counter_totals() -> CounterTotals {
    CounterTotals {
        approx_muls: counter(Counter::ApproxMuls),
        lut_bytes: counter(Counter::LutBytes),
        gemm_macs: counter(Counter::GemmMacs),
        im2col_bytes: counter(Counter::Im2colBytes),
    }
}

/// Accumulated statistics of one span label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanStat {
    count: u64,
    total_ns: u128,
}

fn span_registry() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Clears all counters and span statistics (typically before a run that
/// will be captured into a [`RunProfile`]).
pub fn reset() {
    for t in &TOTALS {
        t.store(0, Ordering::Relaxed);
    }
    span_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// A scoped timer: measures from construction to drop and folds the elapsed
/// time into the process-global registry under its label.
///
/// Construct through [`span`] or [`span2`]; when profiling is disabled the
/// guard is inert (no clock read, no allocation, no lock).
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    state: Option<(String, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((label, start)) = self.state.take() {
            let elapsed = start.elapsed().as_nanos();
            let mut reg = span_registry().lock().unwrap_or_else(|e| e.into_inner());
            let stat = reg.entry(label).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
        }
    }
}

/// Opens a span under `label`. Inert when profiling is disabled.
#[inline]
pub fn span(label: &str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    Span {
        state: Some((label.to_string(), Instant::now())),
    }
}

/// Opens a span under the two-part label `prefix:name` (the per-layer
/// convention: `fwd:conv3x3(16->32)/s1g1`). Formats only when enabled.
#[inline]
pub fn span2(prefix: &str, name: &str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    Span {
        state: Some((format!("{prefix}:{name}"), Instant::now())),
    }
}

/// Sorted snapshot of the span registry as serializable records.
pub(crate) fn span_records() -> Vec<SpanRecord> {
    let reg = span_registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, stat)| SpanRecord {
            name: name.clone(),
            count: stat.count,
            total_ms: stat.total_ns as f64 / 1e6,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The enable flag, counters and span registry are process-global;
    /// serialize the tests that mutate them.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = serial();
        reset();
        set_enabled(false);
        count(Counter::ApproxMuls, 42);
        {
            let _s = span("ignored");
        }
        assert_eq!(counter(Counter::ApproxMuls), 0);
        assert!(span_records().is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = serial();
        reset();
        set_enabled(true);
        count(Counter::GemmMacs, 10);
        count(Counter::GemmMacs, 5);
        count(Counter::LutBytes, 7);
        set_enabled(false);
        assert_eq!(counter(Counter::GemmMacs), 15);
        assert_eq!(counter(Counter::LutBytes), 7);
        let totals = counter_totals();
        assert_eq!(totals.gemm_macs, 15);
        assert_eq!(totals.lut_bytes, 7);
        assert_eq!(totals.approx_muls, 0);
        reset();
        assert_eq!(counter_totals(), CounterTotals::default());
    }

    #[test]
    fn spans_fold_by_label_in_sorted_order() {
        let _g = serial();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("b");
        }
        {
            let _s = span2("a", "layer");
        }
        set_enabled(false);
        let records = span_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "a:layer");
        assert_eq!(records[0].count, 1);
        assert_eq!(records[1].name, "b");
        assert_eq!(records[1].count, 3);
        assert!(records[1].total_ms >= 0.0);
    }

    #[test]
    fn counters_sum_identically_across_thread_interleavings() {
        let _g = serial();
        reset();
        set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        count(Counter::ApproxMuls, 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread");
        }
        set_enabled(false);
        assert_eq!(counter(Counter::ApproxMuls), 4 * 1000 * 3);
    }
}
