//! Sliding-window aggregation for the live observability plane.
//!
//! The registries in this crate are cumulative: a [`crate::RunProfile`]
//! answers "what happened since the last reset". A *serving* deployment
//! needs the other question — "what happened over the last N seconds" —
//! answered repeatedly and cheaply while the process keeps running. This
//! module provides the three pieces:
//!
//! - [`HistWindow`]: a ring of per-slot [`Hist`]s. Recording lands in the
//!   slot owning the current time epoch (lazily recycling slots whose
//!   epoch has expired), and [`HistWindow::merged`] folds the live slots
//!   into one histogram **in ascending epoch order** — the same
//!   shard-order discipline that makes [`Hist::merge`]'s f64 moments
//!   deterministic.
//! - [`CounterWindow`]: the integer analogue, a ring of per-slot event
//!   counts, for rates (requests/s, batches/s) over the window.
//! - [`DeltaTracker`]: turns a cumulative monotonic counter (the
//!   [`crate::counter`] atomics, a plan-cache hit total) into per-snapshot
//!   deltas, saturating at zero across resets instead of underflowing.
//!
//! ## Time is an argument, not an ambient
//!
//! Every operation takes `now_millis` explicitly (milliseconds on any
//! monotonic clock; serving code uses `Instant` elapsed since process
//! start). Windows therefore never read a clock themselves, which keeps
//! them trivially testable and keeps the recording path free of syscalls
//! beyond what the caller already paid for.
//!
//! ## Cost model
//!
//! A window is a plain struct — the caller owns the locking (axnn-serve
//! keeps its windows behind one mutex that is touched once per *batch*,
//! not per request). Recording is O(1); a snapshot merges at most `slots`
//! histograms.

use crate::hist::{Hist, HistSpec};

/// Ring geometry of a sliding window: `slots` slots of `slot_millis` each,
/// covering the last `slots * slot_millis` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Number of ring slots.
    pub slots: usize,
    /// Width of one slot, milliseconds.
    pub slot_millis: u64,
}

impl WindowSpec {
    /// A ring of `slots` slots of `slot_millis` each.
    ///
    /// # Panics
    /// If either dimension is zero.
    pub fn new(slots: usize, slot_millis: u64) -> Self {
        assert!(slots > 0, "need at least one slot");
        assert!(slot_millis > 0, "slots must have nonzero width");
        WindowSpec { slots, slot_millis }
    }

    /// Default serving geometry: 10 slots x 1 s — "the last 10 seconds"
    /// at 1 s granularity.
    pub fn serve() -> Self {
        WindowSpec::new(10, 1000)
    }

    /// Total window span in milliseconds.
    pub fn span_millis(&self) -> u64 {
        self.slots as u64 * self.slot_millis
    }

    /// The span actually covered after `uptime_millis` of recording —
    /// `min(span, uptime)`, floored at one slot. Rates divided by this are
    /// honest during warm-up instead of understated by the empty slots.
    pub fn covered_millis(&self, uptime_millis: u64) -> u64 {
        self.span_millis().min(uptime_millis).max(self.slot_millis)
    }

    /// Slot epoch owning `now_millis`.
    fn epoch(&self, now_millis: u64) -> u64 {
        now_millis / self.slot_millis
    }

    /// Whether a slot stamped `slot_epoch` is still inside the window at
    /// `now_epoch`.
    fn live(&self, slot_epoch: u64, now_epoch: u64) -> bool {
        slot_epoch + self.slots as u64 > now_epoch && slot_epoch <= now_epoch
    }
}

/// One ring slot: the epoch it was last recycled for, plus its histogram.
#[derive(Debug, Clone)]
struct HistSlot {
    epoch: u64,
    hist: Hist,
}

/// A sliding window of mergeable histograms. See the module docs.
#[derive(Debug, Clone)]
pub struct HistWindow {
    window: WindowSpec,
    hist_spec: HistSpec,
    slots: Vec<HistSlot>,
}

impl HistWindow {
    /// An empty window: `window` ring geometry, `hist_spec` bucket
    /// geometry for every slot.
    pub fn new(window: WindowSpec, hist_spec: HistSpec) -> Self {
        HistWindow {
            window,
            hist_spec,
            slots: (0..window.slots)
                .map(|_| HistSlot {
                    // u64::MAX marks "never used": no real epoch reaches it,
                    // so the slot is recycled on first touch and never
                    // counted live.
                    epoch: u64::MAX,
                    hist: Hist::new(hist_spec),
                })
                .collect(),
        }
    }

    /// Ring geometry.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Bucket geometry of the slot histograms.
    pub fn hist_spec(&self) -> HistSpec {
        self.hist_spec
    }

    /// Records `x` into the slot owning `now_millis`, recycling the slot
    /// first if it still holds an expired epoch.
    pub fn record(&mut self, now_millis: u64, x: f64) {
        self.slot_for(now_millis).record(x);
    }

    /// Merges a locally accumulated histogram into the slot owning
    /// `now_millis` (the per-batch pattern: record a batch into a local
    /// `Hist`, then fold it in under one lock).
    pub fn merge(&mut self, now_millis: u64, other: &Hist) {
        self.slot_for(now_millis).merge(other);
    }

    fn slot_for(&mut self, now_millis: u64) -> &mut Hist {
        let epoch = self.window.epoch(now_millis);
        let idx = (epoch % self.window.slots as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            slot.hist = Hist::new(self.hist_spec);
            slot.epoch = epoch;
        }
        &mut slot.hist
    }

    /// Folds the slots still live at `now_millis` into one histogram, in
    /// ascending epoch order — a fixed merge order, so the f64 moments are
    /// a deterministic function of the slot contents.
    pub fn merged(&self, now_millis: u64) -> Hist {
        let now_epoch = self.window.epoch(now_millis);
        let mut live: Vec<&HistSlot> = self
            .slots
            .iter()
            .filter(|s| s.epoch != u64::MAX && self.window.live(s.epoch, now_epoch))
            .collect();
        live.sort_by_key(|s| s.epoch);
        let mut total = Hist::new(self.hist_spec);
        for slot in live {
            total.merge(&slot.hist);
        }
        total
    }
}

/// A sliding window of event counts — the integer analogue of
/// [`HistWindow`], for rates over the last N seconds.
#[derive(Debug, Clone)]
pub struct CounterWindow {
    window: WindowSpec,
    /// `(epoch, count)` per ring slot; epoch `u64::MAX` means never used.
    slots: Vec<(u64, u64)>,
}

impl CounterWindow {
    /// An empty counter window with the given ring geometry.
    pub fn new(window: WindowSpec) -> Self {
        CounterWindow {
            window,
            slots: vec![(u64::MAX, 0); window.slots],
        }
    }

    /// Ring geometry.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Adds `n` events at `now_millis`.
    pub fn add(&mut self, now_millis: u64, n: u64) {
        let epoch = self.window.epoch(now_millis);
        let idx = (epoch % self.window.slots as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != epoch {
            *slot = (epoch, 0);
        }
        slot.1 += n;
    }

    /// Total events in the slots still live at `now_millis`.
    pub fn total(&self, now_millis: u64) -> u64 {
        let now_epoch = self.window.epoch(now_millis);
        self.slots
            .iter()
            .filter(|(e, _)| *e != u64::MAX && self.window.live(*e, now_epoch))
            .map(|(_, n)| n)
            .sum()
    }

    /// Events per second over the covered span (see
    /// [`WindowSpec::covered_millis`]); `uptime_millis` keeps warm-up
    /// rates honest.
    pub fn rate_per_sec(&self, now_millis: u64, uptime_millis: u64) -> f64 {
        let covered = self.window.covered_millis(uptime_millis);
        self.total(now_millis) as f64 * 1000.0 / covered as f64
    }
}

/// Converts a cumulative monotonic counter into per-snapshot deltas.
///
/// `delta(c)` returns how much the counter grew since the previous call.
/// If the counter went *backwards* (an [`crate::reset`] between
/// snapshots), the delta saturates to zero and tracking restarts from the
/// new value — a reset must never produce a huge underflowed delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaTracker {
    last: u64,
}

impl DeltaTracker {
    /// A tracker whose first `delta` call reports growth from zero.
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Growth since the previous call (zero if the counter moved
    /// backwards).
    pub fn delta(&mut self, cumulative: u64) -> u64 {
        let d = cumulative.saturating_sub(self.last);
        self.last = cumulative;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HistSpec {
        HistSpec::new(0.0, 100.0, 10)
    }

    #[test]
    fn window_spec_validates_and_measures() {
        let w = WindowSpec::new(4, 250);
        assert_eq!(w.span_millis(), 1000);
        assert_eq!(w.covered_millis(100), 250); // floor: one slot
        assert_eq!(w.covered_millis(600), 600); // warm-up: uptime
        assert_eq!(w.covered_millis(5000), 1000); // steady state: span
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_are_rejected() {
        WindowSpec::new(0, 1000);
    }

    #[test]
    fn values_expire_as_the_window_slides() {
        let mut w = HistWindow::new(WindowSpec::new(3, 1000), spec());
        w.record(0, 10.0);
        w.record(1100, 20.0);
        w.record(2200, 30.0);
        assert_eq!(w.merged(2500).count(), 3);
        // Epoch 3 evicts epoch 0's slot contents from the live set.
        assert_eq!(w.merged(3100).count(), 2);
        assert_eq!(w.merged(3100).min(), 20.0);
        // Far future: everything expired.
        assert!(w.merged(60_000).is_empty());
    }

    #[test]
    fn slot_reuse_recycles_stale_contents() {
        let mut w = HistWindow::new(WindowSpec::new(2, 1000), spec());
        w.record(0, 10.0);
        // Epoch 2 maps onto epoch 0's ring slot; the stale value must not
        // leak into the recycled slot.
        w.record(2000, 50.0);
        let m = w.merged(2000);
        assert_eq!(m.count(), 1);
        assert_eq!(m.min(), 50.0);
    }

    #[test]
    fn merged_is_deterministic_and_order_fixed() {
        let build = || {
            let mut w = HistWindow::new(WindowSpec::new(4, 500), spec());
            for i in 0..40 {
                w.record(i * 47, (i as f64 * 13.7) % 100.0);
            }
            w
        };
        let (a, b) = (build(), build());
        let (ma, mb) = (a.merged(1900), b.merged(1900));
        assert_eq!(ma.mean().to_bits(), mb.mean().to_bits());
        assert_eq!(ma.variance().to_bits(), mb.variance().to_bits());
        assert_eq!(ma.bucket_counts(), mb.bucket_counts());
    }

    #[test]
    fn batch_merge_lands_in_the_current_slot() {
        let mut w = HistWindow::new(WindowSpec::serve(), spec());
        let mut local = Hist::new(spec());
        local.record_all([1.0, 2.0, 3.0]);
        w.merge(500, &local);
        assert_eq!(w.merged(500).count(), 3);
    }

    #[test]
    fn counter_window_totals_and_rates() {
        let mut c = CounterWindow::new(WindowSpec::new(4, 1000));
        c.add(0, 5);
        c.add(1500, 3);
        c.add(3999, 2);
        assert_eq!(c.total(3999), 10);
        // Epoch 4 expires epoch 0's 5 events.
        assert_eq!(c.total(4000), 5);
        // Steady-state rate: 5 events over a 4 s window.
        assert!((c.rate_per_sec(4000, 100_000) - 1.25).abs() < 1e-12);
        // Warm-up rate divides by uptime, not the full span.
        let mut fresh = CounterWindow::new(WindowSpec::new(4, 1000));
        fresh.add(900, 9);
        assert!((fresh.rate_per_sec(999, 1000) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn delta_tracker_is_monotonic_and_reset_safe() {
        let mut d = DeltaTracker::new();
        assert_eq!(d.delta(10), 10);
        assert_eq!(d.delta(25), 15);
        assert_eq!(d.delta(25), 0);
        // Counter reset: saturate, then track from the new baseline.
        assert_eq!(d.delta(3), 0);
        assert_eq!(d.delta(7), 4);
    }
}
