//! Mergeable streaming histograms for numeric-health telemetry.
//!
//! A [`Hist`] combines a fixed-bucket histogram over `[lo, hi)` (with
//! explicit under/overflow counts) and a Welford accumulator for the exact
//! streaming mean/variance/min/max of everything recorded — including the
//! values outside the bucket range.
//!
//! ## Determinism discipline
//!
//! Bucket counts are plain `u64` sums, so they are order-insensitive. The
//! Welford moments are f64 and *are* order-sensitive, so the workspace rule
//! is the same as for the op counters: never record from inside an
//! `axnn_par` region. Either record on the coordinating thread, or give
//! each shard its own local `Hist` and [`merge`](Hist::merge) them in shard
//! order afterwards — f64 arithmetic is deterministic, so a fixed
//! record/merge order makes the moments bit-identical for any worker count
//! (asserted by `tests/thread_invariance.rs`).

use crate::profile::HistRecord;
use std::fmt;

/// Bucket geometry of a [`Hist`]: `buckets` equal-width bins over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSpec {
    /// Inclusive lower edge of the first bucket.
    pub lo: f64,
    /// Exclusive upper edge of the last bucket.
    pub hi: f64,
    /// Number of equal-width buckets.
    pub buckets: usize,
}

impl HistSpec {
    /// A spec over `[lo, hi)` with `buckets` bins.
    ///
    /// # Panics
    /// If the range is empty, non-finite, or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "empty range");
        assert!(buckets > 0, "need at least one bucket");
        HistSpec { lo, hi, buckets }
    }

    /// Default geometry for ε(y) and GE-residual values in i64 code-product
    /// units (paper eq. 11: ε is bounded by the multiplier's worst case,
    /// well inside ±1024 for the 8A4W catalogue).
    pub fn eps() -> Self {
        HistSpec::new(-1024.0, 1024.0, 64)
    }

    /// Default geometry for per-layer weight-gradient L2 norms (gradients
    /// are clipped to norm ≤ 10 by every pipeline stage config).
    pub fn grad_norms() -> Self {
        HistSpec::new(0.0, 16.0, 64)
    }

    /// Geometry for a small integer-indexed population (one unit-width
    /// bucket per index in `[0, n)`) — e.g. which replica worker cut each
    /// serving batch. Recording index `i` lands exactly in bucket `i`.
    pub fn index(n: usize) -> Self {
        HistSpec::new(0.0, n.max(1) as f64, n.max(1))
    }

    /// Bucket index for `x`: `None` means under/overflow.
    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.lo || x >= self.hi {
            return None;
        }
        let w = (self.hi - self.lo) / self.buckets as f64;
        // Clamp: x just below `hi` can round up to `buckets` in f64.
        Some((((x - self.lo) / w) as usize).min(self.buckets - 1))
    }
}

/// Rejected [`Hist::try_merge`]: the two histograms have different bucket
/// geometries, so their counts do not line up bucket-for-bucket. Carrying
/// both specs makes the mismatch diagnosable at the call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecMismatch {
    /// Geometry of the histogram being merged into.
    pub into: HistSpec,
    /// Geometry of the histogram being merged from.
    pub from: HistSpec,
}

impl fmt::Display for SpecMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot merge histograms with different bucket geometries: \
             into [{}, {}) x {} buckets, from [{}, {}) x {} buckets",
            self.into.lo,
            self.into.hi,
            self.into.buckets,
            self.from.lo,
            self.from.hi,
            self.from.buckets
        )
    }
}

impl std::error::Error for SpecMismatch {}

/// A fixed-bucket histogram plus Welford moments. See the module docs for
/// the determinism discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    spec: HistSpec,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Hist {
    /// An empty histogram with the given geometry.
    pub fn new(spec: HistSpec) -> Self {
        Hist {
            spec,
            counts: vec![0; spec.buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Non-finite values are dropped (they would poison
    /// the moments and are unrepresentable in the JSON emitters).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        match self.spec.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.spec.lo => self.underflow += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records every value in `xs` in order.
    pub fn record_all(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Merges `other` into `self` (Chan's parallel Welford update). The
    /// per-shard pattern: each shard records into its own `Hist`, then the
    /// coordinator merges them *in shard order*.
    ///
    /// # Panics
    /// If the bucket geometries differ. Callers that cannot rule a
    /// mismatch out statically (e.g. merging histograms restored from a
    /// profile on disk) should use [`try_merge`](Hist::try_merge) instead.
    pub fn merge(&mut self, other: &Hist) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e}");
        }
    }

    /// Checked [`merge`](Hist::merge): refuses (leaving `self` untouched)
    /// when the bucket geometries differ, instead of silently mis-merging
    /// counts whose bucket edges do not line up.
    pub fn try_merge(&mut self, other: &Hist) -> Result<(), SpecMismatch> {
        if self.spec != other.spec {
            return Err(SpecMismatch {
                into: self.spec,
                from: other.spec,
            });
        }
        if other.count == 0 {
            return Ok(());
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * (nb / n);
        self.m2 += other.m2 + delta * delta * (na * nb / n);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Bucket geometry.
    pub fn spec(&self) -> HistSpec {
        self.spec
    }

    /// Number of recorded (finite) values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Streaming mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Root mean square of the recorded values: `sqrt(mean² + variance)`.
    pub fn rms(&self) -> f64 {
        (self.mean() * self.mean() + self.variance()).sqrt()
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Per-bucket counts (length `spec().buckets`).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below `spec().lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above `spec().hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) reconstructed from the
    /// bucket counts: walks the cumulative counts to the bucket holding the
    /// nearest-rank target and linearly interpolates inside it. Underflow
    /// mass resolves to [`min`](Hist::min), overflow mass to
    /// [`max`](Hist::max), and the interpolated value is clamped into the
    /// observed `[min, max]` so a sparse bucket cannot report a value
    /// outside what was actually recorded. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The endpoints are exact — the Welford extremes, not a bucket
        // edge.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank target (1-based), matching percentile conventions
        // elsewhere in the workspace.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.underflow;
        if target <= cum {
            return self.min;
        }
        let w = (self.spec.hi - self.spec.lo) / self.spec.buckets as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if target <= next {
                let frac = (target - cum) as f64 / c as f64;
                let v = self.spec.lo + w * (i as f64 + frac);
                return v.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Serializable snapshot under `name` (schema v2 `hists` entry).
    pub fn to_record(&self, name: &str) -> HistRecord {
        HistRecord {
            name: name.to_string(),
            lo: self.spec.lo,
            hi: self.spec.hi,
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            count: self.count,
            mean: self.mean(),
            std: self.std(),
            min: self.min(),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_range_with_explicit_flows() {
        let mut h = Hist::new(HistSpec::new(0.0, 10.0, 10));
        h.record_all([0.0, 0.5, 9.999, -1.0, 10.0, 25.0]);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn index_spec_maps_each_index_to_its_own_bucket() {
        let mut h = Hist::new(HistSpec::index(4));
        h.record_all([0.0, 1.0, 1.0, 3.0]);
        assert_eq!(h.bucket_counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 0);
        // Degenerate population size still yields a legal spec.
        assert_eq!(HistSpec::index(0).buckets, 1);
    }

    #[test]
    fn quantiles_interpolate_and_respect_flows() {
        let mut h = Hist::new(HistSpec::new(0.0, 100.0, 100));
        // 1..=100 -> bucket i holds value i+something; p50 ~ 50, p99 ~ 99.
        h.record_all((1..=100).map(f64::from));
        assert!((h.quantile(0.5) - 50.0).abs() <= 1.0, "{}", h.quantile(0.5));
        assert!(
            (h.quantile(0.99) - 99.0).abs() <= 1.0,
            "{}",
            h.quantile(0.99)
        );
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
        // All mass in the flows resolves to the observed extremes.
        let mut f = Hist::new(HistSpec::new(0.0, 1.0, 4));
        f.record_all([-5.0, -5.0, 9.0]);
        assert_eq!(f.quantile(0.5), -5.0);
        assert_eq!(f.quantile(1.0), 9.0);
        // Empty hist degrades to zero.
        assert_eq!(Hist::new(HistSpec::eps()).quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_with_a_single_occupied_bucket_stays_inside_it() {
        // All mass in one interior bucket: interpolation happens within
        // that bucket and the min/max clamp keeps every quantile inside
        // the observed range, never at a bare bucket edge.
        let mut h = Hist::new(HistSpec::new(0.0, 10.0, 10));
        h.record_all([3.2, 3.4, 3.6]);
        assert_eq!(h.quantile(0.0), 3.2);
        assert_eq!(h.quantile(1.0), 3.6);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = h.quantile(q);
            assert!((3.2..=3.6).contains(&v), "q={q} -> {v} escaped the data");
            assert!(v >= prev, "quantiles must be monotone in q");
            prev = v;
        }
        // The degenerate single-sample case collapses every quantile onto
        // that sample.
        let mut one = Hist::new(HistSpec::new(0.0, 10.0, 10));
        one.record(7.25);
        for q in [0.0, 0.3, 0.5, 0.9, 1.0] {
            assert_eq!(one.quantile(q), 7.25, "q={q}");
        }
    }

    #[test]
    fn welford_matches_closed_form() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut h = Hist::new(HistSpec::new(0.0, 10.0, 4));
        h.record_all(xs);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert!((h.variance() - 2.0).abs() < 1e-12);
        assert!((h.rms() - (11.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = Hist::new(HistSpec::eps());
        h.record_all([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.0]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn merge_is_exact_on_counts_and_close_on_moments() {
        let spec = HistSpec::new(-4.0, 4.0, 16);
        let xs: Vec<f64> = (0..257)
            .map(|i| ((i * 37) % 101) as f64 / 13.0 - 3.5)
            .collect();
        let mut serial = Hist::new(spec);
        serial.record_all(xs.iter().copied());
        let mut merged = Hist::new(spec);
        for chunk in xs.chunks(17) {
            let mut shard = Hist::new(spec);
            shard.record_all(chunk.iter().copied());
            merged.merge(&shard);
        }
        assert_eq!(serial.bucket_counts(), merged.bucket_counts());
        assert_eq!(serial.count(), merged.count());
        assert!((serial.mean() - merged.mean()).abs() < 1e-12);
        assert!((serial.variance() - merged.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_order_is_deterministic() {
        // Same shards, same order → bit-identical moments, twice over.
        let spec = HistSpec::eps();
        let build = || {
            let mut total = Hist::new(spec);
            for s in 0..7u64 {
                let mut shard = Hist::new(spec);
                shard.record_all((0..50).map(|i| ((s * 50 + i) as f64).sin() * 300.0));
                total.merge(&shard);
            }
            total
        };
        let a = build();
        let b = build();
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
    }

    #[test]
    fn empty_hist_reports_zeros() {
        let h = Hist::new(HistSpec::eps());
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let r = h.to_record("empty");
        assert_eq!(r.count, 0);
        assert_eq!(r.mean, 0.0);
    }

    #[test]
    fn try_merge_rejects_mismatched_geometries() {
        let base = HistSpec::new(0.0, 10.0, 10);
        let mut h = Hist::new(base);
        h.record_all([1.0, 2.0]);
        let before = h.clone();
        for bad in [
            HistSpec::new(-1.0, 10.0, 10), // lo differs
            HistSpec::new(0.0, 20.0, 10),  // hi differs
            HistSpec::new(0.0, 10.0, 5),   // bucket count differs
        ] {
            let mut other = Hist::new(bad);
            other.record(3.0);
            let err = h.try_merge(&other).expect_err("mismatch must be refused");
            assert_eq!(err.into, base);
            assert_eq!(err.from, bad);
            assert!(err.to_string().contains("different bucket geometries"));
            assert_eq!(h, before, "a refused merge must leave the target intact");
        }
        // Matching geometry still merges.
        let mut ok = Hist::new(base);
        ok.record(4.0);
        h.try_merge(&ok).expect("same spec merges");
        assert_eq!(h.count(), 3);
    }

    #[test]
    #[should_panic(expected = "different bucket geometries")]
    fn merge_panics_on_mismatched_geometries() {
        let mut h = Hist::new(HistSpec::new(0.0, 10.0, 10));
        h.merge(&Hist::new(HistSpec::new(0.0, 10.0, 5)));
    }

    #[test]
    fn merging_empty_changes_nothing() {
        let mut h = Hist::new(HistSpec::eps());
        h.record_all([1.0, 2.0]);
        let before = h.clone();
        h.merge(&Hist::new(HistSpec::eps()));
        assert_eq!(h, before);
    }
}
