//! Run-level aggregation: a [`RunProfile`] snapshots the process-global
//! counters, span registry and health registries into a serializable
//! record.
//!
//! The JSON/CSV emitters are hand-written (the workspace convention for
//! flat machine-readable artifacts, cf. `results/BENCH_gemm.json`): the
//! crate stays zero-dependency beyond `serde`, and the emitted bytes do
//! not depend on which serde backend a build links. The serde derives only
//! serve *parsing* (the `axnn obs` analyzer); `tests/json_roundtrip.rs`
//! proptests that `serde_json` parses what the emitter writes back to the
//! same value.
//!
//! ## Schema versions
//!
//! - **v1** (PR 2): `label`, `counters`, `spans`.
//! - **v2** (this layer): adds `schema_version` plus the `hists`, `health`
//!   and `events` sections. v1 lines carry no `schema_version` field and
//!   parse with `schema_version = 1` and empty health sections.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// The schema version written by [`RunProfile::capture`].
pub const SCHEMA_VERSION: u32 = 2;

fn schema_v1() -> u32 {
    1
}

/// Snapshot of every [`Counter`](crate::Counter) total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTotals {
    /// Approximate multiplications executed (zero weight codes excluded).
    pub approx_muls: u64,
    /// Bytes served from multiplier LUT rows (4 per approximate product).
    pub lut_bytes: u64,
    /// Exact f32 multiply-accumulates in forward/backward GEMMs.
    pub gemm_macs: u64,
    /// Bytes moved by im2col / col2im lowering.
    pub im2col_bytes: u64,
    /// Compiled-graph forwards served from a cached buffer plan.
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Compiled-graph forwards that had to plan buffers for a new shape.
    #[serde(default)]
    pub plan_cache_misses: u64,
    /// Heterogeneous-search candidates scored fresh (inference + energy).
    #[serde(default)]
    pub search_evals: u64,
    /// Heterogeneous-search candidates answered from the evaluation cache.
    #[serde(default)]
    pub search_cache_hits: u64,
    /// Heterogeneous-search candidates that missed the evaluation cache.
    #[serde(default)]
    pub search_cache_misses: u64,
}

/// Aggregated statistics of one span label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span label, e.g. `fwd:conv3x3(16->32)/s1` or `stage:quantize`.
    pub name: String,
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall-clock across all entries, milliseconds.
    pub total_ms: f64,
}

/// Serialized snapshot of one [`Hist`](crate::Hist) (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistRecord {
    /// Histogram label, e.g. `eps:conv3x3(16->32)/s1g1`.
    pub name: String,
    /// Inclusive lower edge of the bucket range.
    pub lo: f64,
    /// Exclusive upper edge of the bucket range.
    pub hi: f64,
    /// Per-bucket counts over `[lo, hi)`.
    pub counts: Vec<u64>,
    /// Values below `lo`.
    pub underflow: u64,
    /// Values at or above `hi`.
    pub overflow: u64,
    /// Total recorded values (buckets + flows).
    pub count: u64,
    /// Streaming mean of all recorded values.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
}

impl HistRecord {
    /// Root mean square of the recorded values.
    pub fn rms(&self) -> f64 {
        (self.mean * self.mean + self.std * self.std).sqrt()
    }
}

/// A hit/total ratio (saturation rates, K-mask coverage; schema v2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatioRecord {
    /// Ratio label, e.g. `sat_x:conv3x3(16->32)/s1g1`.
    pub name: String,
    /// Observations that hit the condition.
    pub hits: u64,
    /// Total observations.
    pub total: u64,
}

impl RatioRecord {
    /// `hits / total` (0 when nothing was observed).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// A discrete telemetry event, e.g. an ε-drift trip (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Emission index within the run (0-based).
    pub seq: u64,
    /// Event kind, e.g. `eps_drift`.
    pub kind: String,
    /// What the event is about (multiplier id, layer label, ...).
    pub label: String,
    /// Kind-specific magnitude (for `eps_drift`: observed/fit RMS ratio).
    pub value: f64,
    /// Free-form human-readable context.
    pub detail: String,
}

/// A captured profile of one run: label, counter totals, sorted spans, and
/// (schema v2) the health sections.
///
/// Serializes to one JSON object per line ([`RunProfile::to_json`] /
/// [`RunProfile::append_jsonl`]) or a flat CSV ([`RunProfile::to_csv`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Schema version of the serialized form; v1 lines omit the field.
    #[serde(default = "schema_v1")]
    pub schema_version: u32,
    /// Free-form run label (multiplier name, bench id, ...).
    pub label: String,
    /// Counter totals at capture time.
    pub counters: CounterTotals,
    /// Span statistics, sorted by label for deterministic output.
    pub spans: Vec<SpanRecord>,
    /// Histogram snapshots, sorted by label (empty on v1 lines).
    #[serde(default)]
    pub hists: Vec<HistRecord>,
    /// Hit/total ratios, sorted by label (empty on v1 lines).
    #[serde(default)]
    pub health: Vec<RatioRecord>,
    /// Telemetry events in emission order (empty on v1 lines).
    #[serde(default)]
    pub events: Vec<EventRecord>,
}

impl RunProfile {
    /// Snapshots the current process-global counters, spans and health
    /// registries under `label`. Does not reset them — call [`crate::reset`]
    /// first to scope a profile to one run.
    pub fn capture(label: &str) -> Self {
        RunProfile {
            schema_version: SCHEMA_VERSION,
            label: label.to_string(),
            counters: crate::counter_totals(),
            spans: crate::span_records(),
            hists: crate::hist_records(),
            health: crate::ratio_records(),
            events: crate::event_records(),
        }
    }

    /// One-line JSON object (JSONL-friendly; keys in fixed order).
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": {}, \"count\": {}, \"total_ms\": {:.6}}}",
                    json_string(&s.name),
                    s.count,
                    s.total_ms
                )
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|h| {
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "{{\"name\": {}, \"lo\": {}, \"hi\": {}, \"counts\": [{}], \
                     \"underflow\": {}, \"overflow\": {}, \"count\": {}, \"mean\": {}, \
                     \"std\": {}, \"min\": {}, \"max\": {}}}",
                    json_string(&h.name),
                    json_f64(h.lo),
                    json_f64(h.hi),
                    counts.join(", "),
                    h.underflow,
                    h.overflow,
                    h.count,
                    json_f64(h.mean),
                    json_f64(h.std),
                    json_f64(h.min),
                    json_f64(h.max)
                )
            })
            .collect();
        let health: Vec<String> = self
            .health
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\": {}, \"hits\": {}, \"total\": {}}}",
                    json_string(&r.name),
                    r.hits,
                    r.total
                )
            })
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"seq\": {}, \"kind\": {}, \"label\": {}, \"value\": {}, \"detail\": {}}}",
                    e.seq,
                    json_string(&e.kind),
                    json_string(&e.label),
                    json_f64(e.value),
                    json_string(&e.detail)
                )
            })
            .collect();
        format!(
            "{{\"schema_version\": {}, \"label\": {}, \"counters\": {{\"approx_muls\": {}, \"lut_bytes\": {}, \"gemm_macs\": {}, \"im2col_bytes\": {}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \"search_evals\": {}, \"search_cache_hits\": {}, \"search_cache_misses\": {}}}, \"spans\": [{}], \"hists\": [{}], \"health\": [{}], \"events\": [{}]}}",
            self.schema_version,
            json_string(&self.label),
            c.approx_muls,
            c.lut_bytes,
            c.gemm_macs,
            c.im2col_bytes,
            c.plan_cache_hits,
            c.plan_cache_misses,
            c.search_evals,
            c.search_cache_hits,
            c.search_cache_misses,
            spans.join(", "),
            hists.join(", "),
            health.join(", "),
            events.join(", ")
        )
    }

    /// Decodes one profile from JSON produced by [`Self::to_json`] (or by
    /// `serde_json` against the derives) using the dependency-free reader
    /// in [`crate::json`], so `axnn obs report|diff` stay available in
    /// fully offline builds.
    ///
    /// Field semantics match the derives: `label`, `counters` and `spans`
    /// are required; `schema_version` defaults to 1 and the v2 sections
    /// (`hists`, `health`, `events`) default to empty. Numeric members
    /// inside records default to zero when absent.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed construct.
    pub fn from_json(json: &str) -> Result<Self, String> {
        use crate::json::JsonValue;

        fn str_field(v: &JsonValue, key: &str, what: &str) -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{what}: missing string '{key}'"))
        }
        fn u64_field(v: &JsonValue, key: &str) -> u64 {
            v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
        }
        fn f64_field(v: &JsonValue, key: &str) -> f64 {
            v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
        }
        fn section<'a>(doc: &'a JsonValue, key: &str) -> Result<Vec<&'a JsonValue>, String> {
            match doc.get(key) {
                None => Ok(Vec::new()),
                Some(v) => Ok(v
                    .as_array()
                    .ok_or_else(|| format!("'{key}' is not an array"))?
                    .iter()
                    .collect()),
            }
        }

        let doc = JsonValue::parse(json.as_bytes()).map_err(|e| e.to_string())?;
        let counters = doc
            .get("counters")
            .ok_or_else(|| "missing 'counters' object".to_string())?;
        let spans = doc
            .get("spans")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing 'spans' array".to_string())?;
        Ok(RunProfile {
            schema_version: doc
                .get("schema_version")
                .and_then(JsonValue::as_u64)
                .map(|v| v as u32)
                .unwrap_or(1),
            label: str_field(&doc, "label", "profile")?,
            counters: CounterTotals {
                approx_muls: u64_field(counters, "approx_muls"),
                lut_bytes: u64_field(counters, "lut_bytes"),
                gemm_macs: u64_field(counters, "gemm_macs"),
                im2col_bytes: u64_field(counters, "im2col_bytes"),
                plan_cache_hits: u64_field(counters, "plan_cache_hits"),
                plan_cache_misses: u64_field(counters, "plan_cache_misses"),
                search_evals: u64_field(counters, "search_evals"),
                search_cache_hits: u64_field(counters, "search_cache_hits"),
                search_cache_misses: u64_field(counters, "search_cache_misses"),
            },
            spans: spans
                .iter()
                .map(|s| {
                    Ok(SpanRecord {
                        name: str_field(s, "name", "span")?,
                        count: u64_field(s, "count"),
                        total_ms: f64_field(s, "total_ms"),
                    })
                })
                .collect::<Result<_, String>>()?,
            hists: section(&doc, "hists")?
                .into_iter()
                .map(|h| {
                    let counts = match h.get("counts") {
                        None => Vec::new(),
                        Some(v) => v
                            .as_array()
                            .ok_or_else(|| "hist 'counts' is not an array".to_string())?
                            .iter()
                            .map(|c| c.as_u64().ok_or_else(|| "non-u64 bucket count".to_string()))
                            .collect::<Result<_, String>>()?,
                    };
                    Ok(HistRecord {
                        name: str_field(h, "name", "hist")?,
                        lo: f64_field(h, "lo"),
                        hi: f64_field(h, "hi"),
                        counts,
                        underflow: u64_field(h, "underflow"),
                        overflow: u64_field(h, "overflow"),
                        count: u64_field(h, "count"),
                        mean: f64_field(h, "mean"),
                        std: f64_field(h, "std"),
                        min: f64_field(h, "min"),
                        max: f64_field(h, "max"),
                    })
                })
                .collect::<Result<_, String>>()?,
            health: section(&doc, "health")?
                .into_iter()
                .map(|r| {
                    Ok(RatioRecord {
                        name: str_field(r, "name", "health ratio")?,
                        hits: u64_field(r, "hits"),
                        total: u64_field(r, "total"),
                    })
                })
                .collect::<Result<_, String>>()?,
            events: section(&doc, "events")?
                .into_iter()
                .map(|e| {
                    Ok(EventRecord {
                        seq: u64_field(e, "seq"),
                        kind: str_field(e, "kind", "event")?,
                        label: str_field(e, "label", "event")?,
                        value: f64_field(e, "value"),
                        detail: str_field(e, "detail", "event")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }

    /// Flat CSV: a header, then one row per counter, span, histogram,
    /// ratio and event; the six columns keep the v1 layout
    /// (`label,kind,name,count,total_ms,value`). Text fields are RFC-4180
    /// quoted. Histogram rows carry `count` and `value = mean`; ratio rows
    /// carry `count = total` and `value = rate`; event rows carry
    /// `count = seq` and `value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,kind,name,count,total_ms,value\n");
        let label = csv_field(&self.label);
        let c = &self.counters;
        for (name, value) in [
            ("approx_muls", c.approx_muls),
            ("lut_bytes", c.lut_bytes),
            ("gemm_macs", c.gemm_macs),
            ("im2col_bytes", c.im2col_bytes),
            ("plan_cache_hits", c.plan_cache_hits),
            ("plan_cache_misses", c.plan_cache_misses),
            ("search_evals", c.search_evals),
            ("search_cache_hits", c.search_cache_hits),
            ("search_cache_misses", c.search_cache_misses),
        ] {
            out.push_str(&format!("{label},counter,{name},,,{value}\n"));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "{label},span,{},{},{:.6},\n",
                csv_field(&s.name),
                s.count,
                s.total_ms
            ));
        }
        for h in &self.hists {
            out.push_str(&format!(
                "{label},hist,{},{},,{}\n",
                csv_field(&h.name),
                h.count,
                json_f64(h.mean)
            ));
        }
        for r in &self.health {
            out.push_str(&format!(
                "{label},health,{},{},,{}\n",
                csv_field(&r.name),
                r.total,
                json_f64(r.rate())
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                "{label},event,{},{},,{}\n",
                csv_field(&format!("{}:{}", e.kind, e.label)),
                e.seq,
                json_f64(e.value)
            ));
        }
        out
    }

    /// Appends `self` as one JSONL line to `path`, creating parent
    /// directories as needed.
    pub fn append_jsonl<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// JSON number literal for an f64: Rust's `Display` prints the shortest
/// decimal that parses back to the same bits, so finite values round-trip
/// exactly through any conforming parser. Non-finite values (which the
/// recording paths never store) degrade to 0.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// RFC-4180 field quoting: wrap in quotes when the field contains a comma,
/// quote, or newline; double embedded quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunProfile {
        RunProfile {
            schema_version: SCHEMA_VERSION,
            label: "resnet8,trunc5".to_string(),
            counters: CounterTotals {
                approx_muls: 100,
                lut_bytes: 400,
                gemm_macs: 7,
                im2col_bytes: 0,
                plan_cache_hits: 3,
                plan_cache_misses: 1,
                search_evals: 9,
                search_cache_hits: 4,
                search_cache_misses: 9,
            },
            spans: vec![
                SpanRecord {
                    name: "fwd:conv3x3".to_string(),
                    count: 2,
                    total_ms: 1.5,
                },
                SpanRecord {
                    name: "with \"quote\"".to_string(),
                    count: 1,
                    total_ms: 0.25,
                },
            ],
            hists: vec![HistRecord {
                name: "eps:conv3x3".to_string(),
                lo: -1024.0,
                hi: 1024.0,
                counts: vec![3, 0, 1],
                underflow: 0,
                overflow: 2,
                count: 6,
                mean: 0.5,
                std: 1.25,
                min: -2.0,
                max: 1030.0,
            }],
            health: vec![RatioRecord {
                name: "sat_x:conv3x3".to_string(),
                hits: 3,
                total: 200,
            }],
            events: vec![EventRecord {
                seq: 0,
                kind: "eps_drift".to_string(),
                label: "trunc5".to_string(),
                value: 2.5,
                detail: "observed rms 2.5x fit".to_string(),
            }],
        }
    }

    #[test]
    fn json_is_one_line_with_escapes() {
        let j = sample().to_json();
        assert!(!j.contains('\n'), "JSONL record must be one line");
        assert!(j.starts_with("{\"schema_version\": 2, \"label\": \"resnet8,trunc5\""));
        assert!(j.contains("\"approx_muls\": 100"));
        assert!(j.contains("\"with \\\"quote\\\"\""));
        assert!(j.contains("\"total_ms\": 1.500000"));
        assert!(j.contains("\"counts\": [3, 0, 1]"));
        assert!(j.contains("\"hits\": 3"));
        assert!(j.contains("\"kind\": \"eps_drift\""));
    }

    #[test]
    fn hand_written_json_round_trips_through_from_json() {
        let p = sample();
        let back = RunProfile::from_json(&p.to_json()).expect("round trip");
        assert_eq!(p, back);
    }

    #[test]
    fn from_json_defaults_v1_sections_and_rejects_garbage() {
        let v1 = "{\"label\": \"old\", \"counters\": {\"gemm_macs\": 5}, \
                  \"spans\": [{\"name\": \"s\", \"count\": 1, \"total_ms\": 0.5}]}";
        let p = RunProfile::from_json(v1).expect("v1 line parses");
        assert_eq!(p.schema_version, 1);
        assert_eq!(p.counters.gemm_macs, 5);
        assert_eq!(p.counters.approx_muls, 0);
        assert!(p.hists.is_empty() && p.health.is_empty() && p.events.is_empty());
        assert!(RunProfile::from_json("not json").is_err());
        assert!(RunProfile::from_json("{\"label\": \"x\"}").is_err());
    }

    #[test]
    fn csv_quotes_commas_and_doubles_quotes() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,kind,name,count,total_ms,value"));
        assert_eq!(
            lines.next(),
            Some("\"resnet8,trunc5\",counter,approx_muls,,,100")
        );
        assert!(csv.contains("\"with \"\"quote\"\"\",1,0.250000,"));
        assert!(csv.contains("hist,eps:conv3x3,6,,0.5"));
        assert!(csv.contains("health,sat_x:conv3x3,200,,0.015"));
        assert!(csv.contains("event,eps_drift:trunc5,0,,2.5"));
        assert!(csv.contains("counter,plan_cache_hits,,,3"));
        assert!(csv.contains("counter,search_evals,,,9"));
        // 1 header + 9 counters + 2 spans + 1 hist + 1 ratio + 1 event
        assert_eq!(csv.lines().count(), 15);
    }

    #[test]
    fn ratio_rate_and_hist_rms() {
        let p = sample();
        assert!((p.health[0].rate() - 0.015).abs() < 1e-12);
        let r = &p.hists[0];
        assert!((r.rms() - (0.25f64 + 1.5625).sqrt()).abs() < 1e-12);
        let empty = RatioRecord {
            name: "r".into(),
            hits: 0,
            total: 0,
        };
        assert_eq!(empty.rate(), 0.0);
    }

    #[test]
    fn append_jsonl_creates_dirs_and_appends() {
        let dir = std::env::temp_dir().join("axnn_obs_profile_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.jsonl");
        let p = sample();
        p.append_jsonl(&path).expect("first append");
        p.append_jsonl(&path).expect("second append");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l == p.to_json()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
