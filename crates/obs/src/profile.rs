//! Run-level aggregation: a [`RunProfile`] snapshots the process-global
//! counters and span registry into a serializable record.
//!
//! The JSON/CSV emitters are hand-written (the workspace convention for
//! flat machine-readable artifacts, cf. `results/BENCH_gemm.json`): the
//! crate stays zero-dependency beyond `serde`, and the emitted bytes do
//! not depend on which serde backend a build links.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Snapshot of every [`Counter`](crate::Counter) total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTotals {
    /// Approximate multiplications executed (zero weight codes excluded).
    pub approx_muls: u64,
    /// Bytes served from multiplier LUT rows (4 per approximate product).
    pub lut_bytes: u64,
    /// Exact f32 multiply-accumulates in forward/backward GEMMs.
    pub gemm_macs: u64,
    /// Bytes moved by im2col / col2im lowering.
    pub im2col_bytes: u64,
}

/// Aggregated statistics of one span label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span label, e.g. `fwd:conv3x3(16->32)/s1` or `stage:quantize`.
    pub name: String,
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall-clock across all entries, milliseconds.
    pub total_ms: f64,
}

/// A captured profile of one run: label, counter totals, sorted spans.
///
/// Serializes to one JSON object per line ([`RunProfile::to_json`] /
/// [`RunProfile::append_jsonl`]) or a flat CSV ([`RunProfile::to_csv`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Free-form run label (multiplier name, bench id, ...).
    pub label: String,
    /// Counter totals at capture time.
    pub counters: CounterTotals,
    /// Span statistics, sorted by label for deterministic output.
    pub spans: Vec<SpanRecord>,
}

impl RunProfile {
    /// Snapshots the current process-global counters and spans under
    /// `label`. Does not reset them — call [`crate::reset`] first to scope
    /// a profile to one run.
    pub fn capture(label: &str) -> Self {
        RunProfile {
            label: label.to_string(),
            counters: crate::counter_totals(),
            spans: crate::span_records(),
        }
    }

    /// One-line JSON object (JSONL-friendly; keys in fixed order).
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": {}, \"count\": {}, \"total_ms\": {:.6}}}",
                    json_string(&s.name),
                    s.count,
                    s.total_ms
                )
            })
            .collect();
        format!(
            "{{\"label\": {}, \"counters\": {{\"approx_muls\": {}, \"lut_bytes\": {}, \"gemm_macs\": {}, \"im2col_bytes\": {}}}, \"spans\": [{}]}}",
            json_string(&self.label),
            c.approx_muls,
            c.lut_bytes,
            c.gemm_macs,
            c.im2col_bytes,
            spans.join(", ")
        )
    }

    /// Flat CSV: a header, one `counter` row per counter, one `span` row
    /// per span label. Text fields are RFC-4180 quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,kind,name,count,total_ms,value\n");
        let label = csv_field(&self.label);
        let c = &self.counters;
        for (name, value) in [
            ("approx_muls", c.approx_muls),
            ("lut_bytes", c.lut_bytes),
            ("gemm_macs", c.gemm_macs),
            ("im2col_bytes", c.im2col_bytes),
        ] {
            out.push_str(&format!("{label},counter,{name},,,{value}\n"));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "{label},span,{},{},{:.6},\n",
                csv_field(&s.name),
                s.count,
                s.total_ms
            ));
        }
        out
    }

    /// Appends `self` as one JSONL line to `path`, creating parent
    /// directories as needed.
    pub fn append_jsonl<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// RFC-4180 field quoting: wrap in quotes when the field contains a comma,
/// quote, or newline; double embedded quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunProfile {
        RunProfile {
            label: "resnet8,trunc5".to_string(),
            counters: CounterTotals {
                approx_muls: 100,
                lut_bytes: 400,
                gemm_macs: 7,
                im2col_bytes: 0,
            },
            spans: vec![
                SpanRecord {
                    name: "fwd:conv3x3".to_string(),
                    count: 2,
                    total_ms: 1.5,
                },
                SpanRecord {
                    name: "with \"quote\"".to_string(),
                    count: 1,
                    total_ms: 0.25,
                },
            ],
        }
    }

    #[test]
    fn json_is_one_line_with_escapes() {
        let j = sample().to_json();
        assert!(!j.contains('\n'), "JSONL record must be one line");
        assert!(j.starts_with("{\"label\": \"resnet8,trunc5\""));
        assert!(j.contains("\"approx_muls\": 100"));
        assert!(j.contains("\"with \\\"quote\\\"\""));
        assert!(j.contains("\"total_ms\": 1.500000"));
    }

    #[test]
    fn csv_quotes_commas_and_doubles_quotes() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,kind,name,count,total_ms,value"));
        assert_eq!(
            lines.next(),
            Some("\"resnet8,trunc5\",counter,approx_muls,,,100")
        );
        assert!(csv.contains("\"with \"\"quote\"\"\",1,0.250000,"));
        // 1 header + 4 counters + 2 spans
        assert_eq!(csv.lines().count(), 7);
    }

    #[test]
    fn append_jsonl_creates_dirs_and_appends() {
        let dir = std::env::temp_dir().join("axnn_obs_profile_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.jsonl");
        let p = sample();
        p.append_jsonl(&path).expect("first append");
        p.append_jsonl(&path).expect("second append");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l == p.to_json()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
