//! Shared model-builder configuration.

/// Configuration shared by all model builders.
///
/// `width_mult` scales every channel count (rounded up to at least 1);
/// `input_hw` is the square input resolution. The paper's models are
/// `ModelConfig::paper()` (width 1.0, 32×32 CIFAR-10 inputs); the
/// CPU-tractable experiment models are `ModelConfig::mini()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Channel width multiplier (1.0 = the paper's architecture).
    pub width_mult: f32,
    /// Square input resolution (32 for CIFAR-10).
    pub input_hw: usize,
    /// Number of input channels (3 for RGB).
    pub input_channels: usize,
    /// Number of output classes (10 for CIFAR-10).
    pub classes: usize,
    /// Build batch-norm layers. The paper folds BN into the ResNet convs
    /// before quantization — that is done *after* FP training via
    /// [`Layer::fold_batch_norm`](axnn_nn::Layer::fold_batch_norm), so
    /// builders always start with BN unless this is `false`.
    pub batch_norm: bool,
}

impl ModelConfig {
    /// The paper's full-size configuration: width 1.0, 32×32×3, 10 classes.
    pub fn paper() -> Self {
        Self {
            width_mult: 1.0,
            input_hw: 32,
            input_channels: 3,
            classes: 10,
            batch_norm: true,
        }
    }

    /// A CPU-tractable configuration: width 0.25, 16×16×3, 10 classes.
    pub fn mini() -> Self {
        Self {
            width_mult: 0.25,
            input_hw: 16,
            input_channels: 3,
            classes: 10,
            batch_norm: true,
        }
    }

    /// Builder-style width override.
    pub fn with_width(mut self, width_mult: f32) -> Self {
        assert!(width_mult > 0.0, "width multiplier must be positive");
        self.width_mult = width_mult;
        self
    }

    /// Builder-style input-resolution override.
    pub fn with_input_hw(mut self, hw: usize) -> Self {
        assert!(hw > 0, "input resolution must be positive");
        self.input_hw = hw;
        self
    }

    /// Scales a base channel count by the width multiplier (min 1).
    pub fn ch(&self, base: usize) -> usize {
        ((base as f32 * self.width_mult).round() as usize).max(1)
    }

    /// The input shape `[N, C, H, W]` for batch size `n`.
    pub fn input_shape(&self, n: usize) -> Vec<usize> {
        vec![n, self.input_channels, self.input_hw, self.input_hw]
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scaling_rounds_and_floors() {
        let cfg = ModelConfig::paper().with_width(0.25);
        assert_eq!(cfg.ch(16), 4);
        assert_eq!(cfg.ch(64), 16);
        assert_eq!(cfg.ch(1), 1);
        assert_eq!(ModelConfig::paper().with_width(0.01).ch(16), 1);
    }

    #[test]
    fn paper_config_matches_cifar10() {
        let cfg = ModelConfig::paper();
        assert_eq!(cfg.input_shape(128), vec![128, 3, 32, 32]);
        assert_eq!(cfg.classes, 10);
        assert_eq!(cfg.ch(16), 16);
    }

    #[test]
    fn mini_is_smaller() {
        let mini = ModelConfig::mini();
        assert!(mini.input_hw < ModelConfig::paper().input_hw);
        assert!(mini.ch(64) < 64);
    }
}
