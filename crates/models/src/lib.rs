//! # axnn-models
//!
//! Builders for the CNNs evaluated in the paper (Table I): ResNet-20,
//! ResNet-32 \[6\] and MobileNetV2 \[7\], in their CIFAR-10 form.
//!
//! Every builder takes a [`ModelConfig`] with a **width multiplier** and
//! input geometry: full-width models reproduce the paper's parameter/MAC
//! counts for Table I, while the width-reduced "mini" variants make
//! CPU-scale training runs tractable (this reproduction runs on one core —
//! see `DESIGN.md`).
//!
//! The returned networks are plain [`Sequential`](axnn_nn::Sequential)
//! stacks of `axnn-nn` layers, so the quantization/approximation executors
//! swap in uniformly.
//!
//! # Example
//!
//! ```
//! use axnn_models::{resnet20, ModelConfig};
//! use axnn_nn::{Layer, Mode};
//! use axnn_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cfg = ModelConfig::mini(); // width 1/4, 16x16 inputs
//! let mut net = resnet20(&cfg, &mut rng);
//! let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
//! assert_eq!(y.shape(), &[1, 10]);
//! ```

mod config;
mod lenet;
mod mobilenet;
mod profile;
mod resnet;

pub use config::ModelConfig;
pub use lenet::lenet;
pub use mobilenet::mobilenet_v2;
pub use profile::ModelProfile;
pub use resnet::{resnet20, resnet32, resnet_cifar};
