//! A LeNet-style plain CNN — the smallest credible approximation target,
//! used by quick experiments and as a template for custom architectures
//! built from the full layer toolbox (max pooling, dropout).

use crate::config::ModelConfig;
use axnn_nn::{
    ActivationKind, ConvBlock, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Sequential,
};
use rand::Rng;

/// Builds a LeNet-style network: two conv+pool stages, dropout, and a
/// linear classifier. Channel counts scale with `cfg.width_mult`
/// (base 16/32).
///
/// # Panics
///
/// Panics if `cfg.input_hw` is not divisible by 4 (two 2×2 pools).
///
/// # Example
///
/// ```
/// use axnn_models::{lenet, ModelConfig};
/// use axnn_nn::{Layer, Mode};
/// use axnn_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = lenet(&ModelConfig::mini(), &mut rng);
/// let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 10]);
/// ```
pub fn lenet(cfg: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    assert_eq!(
        cfg.input_hw % 4,
        0,
        "LeNet needs an input divisible by 4 (two 2x2 pools)"
    );
    let c1 = cfg.ch(16);
    let c2 = cfg.ch(32);
    let dropout_seed = rng.gen();
    Sequential::new(vec![
        Box::new(ConvBlock::new(
            cfg.input_channels,
            c1,
            3,
            1,
            1,
            1,
            cfg.batch_norm,
            ActivationKind::Relu,
            rng,
        )),
        Box::new(MaxPool2d::new(2)),
        Box::new(ConvBlock::new(
            c1,
            c2,
            3,
            1,
            1,
            1,
            cfg.batch_norm,
            ActivationKind::Relu,
            rng,
        )),
        Box::new(MaxPool2d::new(2)),
        Box::new(GlobalAvgPool::new()),
        Box::new(Flatten::new()),
        Box::new(Dropout::new(0.25, dropout_seed)),
        Box::new(Linear::new(c2, cfg.classes, true, rng)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_nn::train::{evaluate, hard_loss, train_epoch, Dataset};
    use axnn_nn::{Layer, Mode, Sgd};
    use axnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(140);
        let cfg = ModelConfig::mini();
        let mut net = lenet(&cfg, &mut rng);
        assert_eq!(net.output_shape(&cfg.input_shape(2)), vec![2, 10]);
        assert!(net.param_count() > 100);
        let mut gemm_layers = 0;
        net.visit_gemm_cores(&mut |_| gemm_layers += 1);
        assert_eq!(gemm_layers, 3, "two convs + classifier");
    }

    #[test]
    fn trains_on_synthetic_data() {
        let mut rng = StdRng::seed_from_u64(141);
        let cfg = ModelConfig::mini().with_input_hw(8);
        let mut net = lenet(&cfg, &mut rng);
        // Two visually distinct classes: constant-bright vs constant-dark.
        let n = 40;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let v = if i % 2 == 0 { 0.8 } else { -0.8 };
            images.push(Tensor::full(&[3, 8, 8], v));
            labels.push(i % 2);
        }
        let data = Dataset::new(Tensor::stack(&images).unwrap(), labels);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        for _ in 0..15 {
            train_epoch(&mut net, &data, 8, &mut opt, &mut hard_loss);
        }
        let acc = evaluate(&mut net, &data, 8);
        assert!(acc > 0.9, "LeNet failed a trivial task: {acc}");
    }

    #[test]
    fn backward_runs_through_pool_and_dropout() {
        let mut rng = StdRng::seed_from_u64(142);
        let cfg = ModelConfig::mini().with_input_hw(8);
        let mut net = lenet(&cfg, &mut rng);
        let x = Tensor::ones(&cfg.input_shape(2));
        let y = net.forward(&x, Mode::Train);
        let dx = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_unpoolable_input() {
        let mut rng = StdRng::seed_from_u64(143);
        let cfg = ModelConfig::mini().with_input_hw(6);
        let _ = lenet(&cfg, &mut rng);
    }
}
