//! MobileNetV2 (Sandler et al. \[7\]), CIFAR-10 adaptation.

use crate::config::ModelConfig;
use axnn_nn::{ActivationKind, ConvBlock, Flatten, GlobalAvgPool, Linear, Residual, Sequential};
use rand::Rng;

/// One inverted-residual bottleneck: 1×1 expand (ReLU6) → 3×3 depthwise
/// (ReLU6) → 1×1 linear projection, with an identity residual when the
/// block is shape-preserving.
fn inverted_residual(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    bn: bool,
    rng: &mut impl Rng,
) -> Box<dyn axnn_nn::Layer> {
    let hidden = in_ch * expand;
    let mut main = Sequential::empty();
    if expand != 1 {
        main.push(Box::new(ConvBlock::new(
            in_ch,
            hidden,
            1,
            1,
            0,
            1,
            bn,
            ActivationKind::Relu6,
            rng,
        )));
    }
    main.push(Box::new(ConvBlock::new(
        hidden,
        hidden,
        3,
        stride,
        1,
        hidden, // depthwise
        bn,
        ActivationKind::Relu6,
        rng,
    )));
    main.push(Box::new(ConvBlock::new(
        hidden,
        out_ch,
        1,
        1,
        0,
        1,
        bn,
        ActivationKind::Identity,
        rng,
    )));
    if stride == 1 && in_ch == out_ch {
        Box::new(Residual::new(main, None, ActivationKind::Identity))
    } else {
        Box::new(main)
    }
}

/// Per-stage settings `(expand t, base channels c, repeats n, stride s)` of
/// the CIFAR-10 adaptation (stem stride 1; early strides relaxed for 32×32
/// inputs). This stride pattern reproduces the paper's Table I MAC count
/// (0.296×10⁹) exactly at width 1.0 on 32×32 inputs.
const STAGES: &[(usize, usize, usize, usize)] = &[
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 1),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds MobileNetV2 for CIFAR-10 (paper Table I: 2.2 M params at width
/// 1.0). The paper keeps BN layers in MobileNetV2 (no folding) "to avoid a
/// large accuracy drop"; that choice is made by the caller — this builder
/// constructs BN per `cfg.batch_norm` like every other model.
///
/// ```
/// use axnn_models::{mobilenet_v2, ModelConfig};
/// use axnn_nn::{Layer, Mode};
/// use axnn_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = mobilenet_v2(&ModelConfig::mini(), &mut rng);
/// let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 10]);
/// ```
pub fn mobilenet_v2(cfg: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::empty();
    let stem = cfg.ch(32);
    net.push(Box::new(ConvBlock::new(
        cfg.input_channels,
        stem,
        3,
        1,
        1,
        1,
        cfg.batch_norm,
        ActivationKind::Relu6,
        rng,
    )));
    let mut in_ch = stem;
    for &(t, c, n, s) in STAGES {
        let out_ch = cfg.ch(c);
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            net.push(inverted_residual(
                in_ch,
                out_ch,
                stride,
                t,
                cfg.batch_norm,
                rng,
            ));
            in_ch = out_ch;
        }
    }
    let head = cfg.ch(1280);
    net.push(Box::new(ConvBlock::new(
        in_ch,
        head,
        1,
        1,
        0,
        1,
        cfg.batch_norm,
        ActivationKind::Relu6,
        rng,
    )));
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(head, cfg.classes, true, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_nn::{Layer, Mode};
    use axnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_width_parameter_count_matches_table1() {
        let mut rng = StdRng::seed_from_u64(90);
        let mut net = mobilenet_v2(&ModelConfig::paper(), &mut rng);
        let params = net.param_count();
        // Paper Table I: 2.2e6.
        assert!(
            (2_000_000..2_600_000).contains(&params),
            "MobileNetV2 params {params}"
        );
    }

    #[test]
    fn mini_forward_backward() {
        let mut rng = StdRng::seed_from_u64(91);
        let cfg = ModelConfig::mini();
        let mut net = mobilenet_v2(&cfg, &mut rng);
        let x = Tensor::ones(&cfg.input_shape(2));
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn identity_residuals_only_where_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(92);
        let cfg = ModelConfig::mini();
        let net = mobilenet_v2(&cfg, &mut rng);
        // Output shape consistency implies residual wiring is correct.
        assert_eq!(net.output_shape(&cfg.input_shape(1)), vec![1, 10]);
    }

    #[test]
    fn depthwise_blocks_dominate_macs_less_than_dense_resnet() {
        let mut rng = StdRng::seed_from_u64(93);
        let cfg = ModelConfig::paper();
        let mobilenet_macs = mobilenet_v2(&cfg, &mut rng).mac_count(&cfg.input_shape(1));
        // Paper Table I: 0.296e9 MACs.
        assert!(
            (280_000_000..320_000_000).contains(&mobilenet_macs),
            "MobileNetV2 MACs {mobilenet_macs}"
        );
    }
}
