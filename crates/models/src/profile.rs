//! Model profiling: the parameter/MAC numbers of the paper's Table I.

use axnn_nn::{Layer, Sequential};

/// Static cost profile of a model: trainable parameters and
/// multiply-accumulate operations for one forward pass.
///
/// ```
/// use axnn_models::{resnet20, ModelConfig, ModelProfile};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = ModelConfig::paper();
/// let mut net = resnet20(&cfg, &mut rng);
/// let profile = ModelProfile::measure(&mut net, &cfg.input_shape(1));
/// assert!(profile.params > 100_000);
/// assert!(profile.macs > profile.params as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProfile {
    /// Trainable parameter count.
    pub params: u64,
    /// MAC operations for a single forward pass at the given input shape.
    pub macs: u64,
}

impl ModelProfile {
    /// Profiles `net` for one sample of shape `input_shape` (`[1, C, H, W]`).
    pub fn measure(net: &mut Sequential, input_shape: &[usize]) -> Self {
        Self {
            params: net.param_count(),
            macs: net.mac_count(input_shape),
        }
    }

    /// Parameters in the paper's Table I unit (×10⁶).
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1e6
    }

    /// MACs in the paper's Table I unit (×10⁹).
    pub fn macs_billions(&self) -> f64 {
        self.macs as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mobilenet_v2, resnet20, resnet32, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_ordering_holds() {
        // Table I: params ResNet20 < ResNet32 < MobileNetV2, and MACs too.
        let mut rng = StdRng::seed_from_u64(100);
        let cfg = ModelConfig::paper();
        let shape = cfg.input_shape(1);
        let p20 = ModelProfile::measure(&mut resnet20(&cfg, &mut rng), &shape);
        let p32 = ModelProfile::measure(&mut resnet32(&cfg, &mut rng), &shape);
        let pmb = ModelProfile::measure(&mut mobilenet_v2(&cfg, &mut rng), &shape);
        assert!(p20.params < p32.params && p32.params < pmb.params);
        assert!(p20.macs < p32.macs && p32.macs < pmb.macs);
    }

    #[test]
    fn unit_conversions() {
        let p = ModelProfile {
            params: 2_200_000,
            macs: 296_000_000,
        };
        assert!((p.params_millions() - 2.2).abs() < 1e-9);
        assert!((p.macs_billions() - 0.296).abs() < 1e-9);
    }
}
