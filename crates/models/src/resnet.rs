//! CIFAR-style ResNets (He et al. \[6\]): ResNet-20 and ResNet-32.

use crate::config::ModelConfig;
use axnn_nn::{ActivationKind, ConvBlock, Flatten, GlobalAvgPool, Linear, Residual, Sequential};
use rand::Rng;

/// Builds one basic block: two 3×3 conv(+BN) layers with a post-add ReLU.
/// A 1×1 projection shortcut is used when the shape changes (the original
/// paper's option A zero-pads instead; the projection variant is the common
/// reproduction choice and changes parameter counts by < 3 %).
fn basic_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    bn: bool,
    rng: &mut impl Rng,
) -> Residual {
    let main = Sequential::new(vec![
        Box::new(ConvBlock::new(
            in_ch,
            out_ch,
            3,
            stride,
            1,
            1,
            bn,
            ActivationKind::Relu,
            rng,
        )),
        Box::new(ConvBlock::new(
            out_ch,
            out_ch,
            3,
            1,
            1,
            1,
            bn,
            ActivationKind::Identity,
            rng,
        )),
    ]);
    let shortcut = (stride != 1 || in_ch != out_ch).then(|| {
        Sequential::new(vec![Box::new(ConvBlock::new(
            in_ch,
            out_ch,
            1,
            stride,
            0,
            1,
            bn,
            ActivationKind::Identity,
            rng,
        )) as Box<dyn axnn_nn::Layer>])
    });
    Residual::new(main, shortcut, ActivationKind::Relu)
}

/// Builds a CIFAR ResNet with `n` basic blocks per stage (depth `6n + 2`):
/// `n = 3` is ResNet-20, `n = 5` is ResNet-32.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn resnet_cifar(n: usize, cfg: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    assert!(n > 0, "need at least one block per stage");
    let widths = [cfg.ch(16), cfg.ch(32), cfg.ch(64)];
    let mut net = Sequential::empty();
    net.push(Box::new(ConvBlock::new(
        cfg.input_channels,
        widths[0],
        3,
        1,
        1,
        1,
        cfg.batch_norm,
        ActivationKind::Relu,
        rng,
    )));
    let mut in_ch = widths[0];
    for (stage, &out_ch) in widths.iter().enumerate() {
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            net.push(Box::new(basic_block(
                in_ch,
                out_ch,
                stride,
                cfg.batch_norm,
                rng,
            )));
            in_ch = out_ch;
        }
    }
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(in_ch, cfg.classes, true, rng)));
    net
}

/// ResNet-20 for CIFAR-10 (paper Table I: 0.27 M params, 41 M MACs at
/// width 1.0).
///
/// ```
/// use axnn_models::{resnet20, ModelConfig};
/// use axnn_nn::Layer;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = resnet20(&ModelConfig::paper(), &mut rng);
/// let params = net.param_count();
/// assert!(params > 250_000 && params < 310_000);
/// ```
pub fn resnet20(cfg: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    resnet_cifar(3, cfg, rng)
}

/// ResNet-32 for CIFAR-10 (paper Table I: 0.47 M params, 69 M MACs at
/// width 1.0).
pub fn resnet32(cfg: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    resnet_cifar(5, cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_nn::{Layer, Mode};
    use axnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet20_shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(80);
        let cfg = ModelConfig::paper();
        let mut net = resnet20(&cfg, &mut rng);
        // Paper Table I: ~0.3e6 params, ~0.041e9 MACs.
        let params = net.param_count();
        assert!(
            (250_000..310_000).contains(&params),
            "ResNet-20 params {params}"
        );
        let macs = net.mac_count(&cfg.input_shape(1));
        assert!(
            (38_000_000..48_000_000).contains(&macs),
            "ResNet-20 MACs {macs}"
        );
        assert_eq!(net.output_shape(&cfg.input_shape(4)), vec![4, 10]);
    }

    #[test]
    fn resnet32_is_deeper_than_resnet20() {
        let mut rng = StdRng::seed_from_u64(81);
        let cfg = ModelConfig::paper();
        let p20 = resnet20(&cfg, &mut rng).param_count();
        let p32 = resnet32(&cfg, &mut rng).param_count();
        // Paper Table I: 0.3e6 vs 0.5e6.
        assert!(p32 > p20);
        assert!((430_000..500_000).contains(&p32), "ResNet-32 params {p32}");
    }

    #[test]
    fn mini_resnet_forward_backward() {
        let mut rng = StdRng::seed_from_u64(82);
        let cfg = ModelConfig::mini();
        let mut net = resnet20(&cfg, &mut rng);
        let x = Tensor::ones(&cfg.input_shape(2));
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn bn_folding_preserves_eval_output() {
        let mut rng = StdRng::seed_from_u64(83);
        let cfg = ModelConfig::mini();
        let mut net = resnet20(&cfg, &mut rng);
        // Warm BN statistics with a few train-mode passes.
        for _ in 0..20 {
            let x = axnn_tensor::init::normal(&cfg.input_shape(4), 0.0, 1.0, &mut rng);
            net.forward(&x, Mode::Train);
        }
        let x = axnn_tensor::init::normal(&cfg.input_shape(2), 0.0, 1.0, &mut rng);
        let before = net.forward(&x, Mode::Eval);
        let params_before = net.param_count();
        net.fold_batch_norm();
        let after = net.forward(&x, Mode::Eval);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Folding removes gamma/beta and adds conv biases: net param change.
        assert_ne!(net.param_count(), params_before);
    }

    #[test]
    fn stage_transitions_downsample() {
        let mut rng = StdRng::seed_from_u64(84);
        let cfg = ModelConfig::paper();
        let net = resnet20(&cfg, &mut rng);
        // 32x32 -> three stages -> 8x8 before pooling; the final output is
        // still [N, classes].
        assert_eq!(net.output_shape(&[1, 3, 32, 32]), vec![1, 10]);
    }
}
