//! Approximate integer GEMM over quantizer codes (paper eq. 4).
//!
//! The hot loops are organised around the w-major [`SignedLut`] layout:
//! activation codes are packed once into `u8` table offsets (4× denser in
//! cache than the incoming `i32` codes), and each weight code pins one
//! contiguous 1 KiB LUT row while a whole activation stripe streams past
//! it. Work is partitioned across threads by output row, so every output
//! element is produced by exactly one thread with the same k-ascending
//! accumulation order as the serial [`reference`] kernels — results are
//! bit-identical for any thread count (and, since the accumulator is exact
//! `i64`, for [`approx_matmul`] the order could not matter anyway).

use crate::signed_lut::SignedLut;
use axnn_tensor::Tensor;

/// Weight rows sharing one streamed activation stripe per block.
const IB: usize = 4;

/// Column block for the approximate-accumulator path: `JB` i64 partial sums
/// plus the matching code segment stay L1-resident across the k loop.
const JB: usize = 256;

/// All-zero stand-in for the LUT row of a zero weight code: the reference
/// kernels skip `w = 0` taps outright (comment there: "exact and approximate
/// products are both zero"), and adding 0 to an exact integer accumulator is
/// the bit-identical branchless equivalent.
static ZERO_ROW: [i32; 256] = [0; 256];

/// Packs `i32` activation codes into `u8` LUT offsets (`code + 128`).
///
/// # Panics
///
/// Panics (in debug builds) if a code is outside `[-128, 127]`.
fn pack_x(col_codes: &[i32]) -> Vec<u8> {
    col_codes
        .iter()
        .map(|&x| {
            debug_assert!((-128..=127).contains(&x), "x code {x} out of range");
            (x + 128) as u8
        })
        .collect()
}

/// Computes `ỹᵢⱼ = Σₖ g̃(Wᵢₖ, Xₖⱼ)` over integer codes, accumulating in
/// `i64`, and returns the result scaled by `scale = s_w · s_x` as an f32
/// tensor of shape `[OC, M]`.
///
/// `w_codes` is the row-major `[OC, K]` weight-code matrix and `col_codes`
/// the `[K, M]` input-code matrix.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
pub fn approx_matmul(
    w_codes: &[i32],
    col_codes: &[i32],
    oc: usize,
    k: usize,
    m: usize,
    lut: &SignedLut,
    scale: f32,
) -> Tensor {
    assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
    assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
    let mut out = vec![0.0f32; oc * m];
    if oc == 0 || m == 0 {
        return Tensor::from_vec(out, &[oc, m]).expect("size computed above");
    }
    count_approx_ops(w_codes, m);
    let xi = pack_x(col_codes);
    axnn_par::par_chunks_mut(&mut out, IB * m, |blk, out_blk| {
        let rows = out_blk.len() / m;
        approx_rows(w_codes, &xi, blk * IB, rows, k, m, lut, scale, out_blk);
    });
    Tensor::from_vec(out, &[oc, m]).expect("size computed above")
}

/// Observability: one approximate (LUT-served) product per nonzero weight
/// code and output column, 4 LUT bytes each. Derived analytically from the
/// workload *before* the parallel region, so the totals are bit-identical
/// for any thread count; a disabled profiler costs one relaxed load.
fn count_approx_ops(w_codes: &[i32], m: usize) {
    if axnn_obs::enabled() {
        let nnz = w_codes.iter().filter(|&&w| w != 0).count() as u64;
        axnn_obs::count(axnn_obs::Counter::ApproxMuls, nnz * m as u64);
        axnn_obs::count(axnn_obs::Counter::LutBytes, nnz * m as u64 * 4);
    }
}

/// LUT row for weight code `w`, with `w = 0` redirected to [`ZERO_ROW`].
#[inline]
fn lut_row(lut: &SignedLut, w: i32) -> &[i32] {
    if w == 0 {
        &ZERO_ROW
    } else {
        lut.w_row(w)
    }
}

/// Accumulates `rows` output rows starting at `i0`, blocking `IB` weight
/// rows over one streamed activation stripe (each packed-code load feeds
/// `IB` gathers) and unrolling k by two (each accumulator load/store is
/// amortised over two taps). Per output element the taps still fold in
/// ascending-k order, so the result is bit-identical to the serial
/// reference kernel.
#[allow(clippy::too_many_arguments)]
fn approx_rows(
    w_codes: &[i32],
    xi: &[u8],
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    lut: &SignedLut,
    scale: f32,
    out_blk: &mut [f32],
) {
    let mut acc = vec![0i64; rows * m];
    let mut r = 0;
    while r + IB <= rows {
        let (head, _) = acc.split_at_mut((r + IB) * m);
        let (_, blk) = head.split_at_mut(r * m);
        let (a0, blk) = blk.split_at_mut(m);
        let (a1, blk) = blk.split_at_mut(m);
        let (a2, a3) = blk.split_at_mut(m);
        let w_at = |rr: usize, kk: usize| w_codes[(i0 + r + rr) * k + kk];
        let mut kk = 0;
        while kk + 2 <= k {
            let x0_row = &xi[kk * m..(kk + 1) * m];
            let x1_row = &xi[(kk + 1) * m..(kk + 2) * m];
            let r00 = lut_row(lut, w_at(0, kk));
            let r01 = lut_row(lut, w_at(0, kk + 1));
            let r10 = lut_row(lut, w_at(1, kk));
            let r11 = lut_row(lut, w_at(1, kk + 1));
            let r20 = lut_row(lut, w_at(2, kk));
            let r21 = lut_row(lut, w_at(2, kk + 1));
            let r30 = lut_row(lut, w_at(3, kk));
            let r31 = lut_row(lut, w_at(3, kk + 1));
            for (((((&x0, &x1), a0), a1), a2), a3) in x0_row
                .iter()
                .zip(x1_row)
                .zip(a0.iter_mut())
                .zip(a1.iter_mut())
                .zip(a2.iter_mut())
                .zip(a3.iter_mut())
            {
                let (x0, x1) = (x0 as usize, x1 as usize);
                *a0 = *a0 + r00[x0] as i64 + r01[x1] as i64;
                *a1 = *a1 + r10[x0] as i64 + r11[x1] as i64;
                *a2 = *a2 + r20[x0] as i64 + r21[x1] as i64;
                *a3 = *a3 + r30[x0] as i64 + r31[x1] as i64;
            }
            kk += 2;
        }
        if kk < k {
            let x_row = &xi[kk * m..(kk + 1) * m];
            let r0 = lut_row(lut, w_at(0, kk));
            let r1 = lut_row(lut, w_at(1, kk));
            let r2 = lut_row(lut, w_at(2, kk));
            let r3 = lut_row(lut, w_at(3, kk));
            for ((((&x, a0), a1), a2), a3) in x_row
                .iter()
                .zip(a0.iter_mut())
                .zip(a1.iter_mut())
                .zip(a2.iter_mut())
                .zip(a3.iter_mut())
            {
                let x = x as usize;
                *a0 += r0[x] as i64;
                *a1 += r1[x] as i64;
                *a2 += r2[x] as i64;
                *a3 += r3[x] as i64;
            }
        }
        r += IB;
    }
    // Tail rows (fewer than IB left in this block).
    for rr in r..rows {
        let a = &mut acc[rr * m..(rr + 1) * m];
        for kk in 0..k {
            let wik = w_codes[(i0 + rr) * k + kk];
            if wik == 0 {
                continue;
            }
            let row = lut.w_row(wik);
            let x_row = &xi[kk * m..(kk + 1) * m];
            for (a_j, &x) in a.iter_mut().zip(x_row) {
                *a_j += row[x as usize] as i64;
            }
        }
    }
    for (o, &a) in out_blk.iter_mut().zip(&acc) {
        *o = a as f32 * scale;
    }
}

/// [`approx_matmul`] with an **approximate accumulator**: every partial sum
/// goes through the behavioural adder instead of exact `+` — the paper's
/// outlook of combining "more than one approximation technique into the CNN
/// computation".
///
/// With [`ExactAdder`](axnn_axmul::adder::ExactAdder) this is bit-identical
/// to [`approx_matmul`].
///
/// Each output element folds its taps through the adder in ascending-`k`
/// order (zero weight codes skipped), exactly as the serial reference
/// kernel does; columns are processed in blocks of [`JB`] so the partial
/// sums and code segment stay cache-resident instead of striding the whole
/// `[K, M]` code matrix per output element.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
#[allow(clippy::too_many_arguments)]
pub fn approx_matmul_with_adder(
    w_codes: &[i32],
    col_codes: &[i32],
    oc: usize,
    k: usize,
    m: usize,
    lut: &SignedLut,
    adder: &dyn axnn_axmul::adder::Adder,
    scale: f32,
) -> Tensor {
    assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
    assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
    let mut out = vec![0.0f32; oc * m];
    if oc == 0 || m == 0 {
        return Tensor::from_vec(out, &[oc, m]).expect("size computed above");
    }
    count_approx_ops(w_codes, m);
    let xi = pack_x(col_codes);
    axnn_par::par_chunks_mut(&mut out, m, |i, out_row| {
        let w_row_codes = &w_codes[i * k..(i + 1) * k];
        let mut acc = [0i64; JB];
        let mut j0 = 0;
        while j0 < m {
            let jn = (m - j0).min(JB);
            acc[..jn].fill(0);
            for (kk, &wik) in w_row_codes.iter().enumerate() {
                if wik == 0 {
                    continue;
                }
                let row = lut.w_row(wik);
                let x_seg = &xi[kk * m + j0..kk * m + j0 + jn];
                for (a, &x) in acc[..jn].iter_mut().zip(x_seg) {
                    *a = adder.add(*a, row[x as usize] as i64);
                }
            }
            for (o, &a) in out_row[j0..j0 + jn].iter_mut().zip(&acc[..jn]) {
                *o = a as f32 * scale;
            }
            j0 += jn;
        }
    });
    Tensor::from_vec(out, &[oc, m]).expect("size computed above")
}

/// The original serial kernels, kept verbatim as the bit-identity oracle
/// for the blocked/parallel paths above and as the single-thread baseline
/// for the thread-scaling benchmarks.
pub mod reference {
    use super::*;

    /// Serial row-at-a-time `approx_matmul` (original implementation).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
    pub fn approx_matmul(
        w_codes: &[i32],
        col_codes: &[i32],
        oc: usize,
        k: usize,
        m: usize,
        lut: &SignedLut,
        scale: f32,
    ) -> Tensor {
        assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
        assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
        let mut out = vec![0.0f32; oc * m];
        for i in 0..oc {
            let w_row = &w_codes[i * k..(i + 1) * k];
            // Accumulate into an i64 row to keep the integer semantics exact.
            let mut acc = vec![0i64; m];
            for (kk, &wik) in w_row.iter().enumerate() {
                if wik == 0 {
                    continue; // exact and approximate products are both zero
                }
                let col_row = &col_codes[kk * m..(kk + 1) * m];
                for (a, &xkj) in acc.iter_mut().zip(col_row) {
                    *a += lut.get(xkj, wik);
                }
            }
            for (o, a) in out[i * m..(i + 1) * m].iter_mut().zip(&acc) {
                *o = *a as f32 * scale;
            }
        }
        Tensor::from_vec(out, &[oc, m]).expect("size computed above")
    }

    /// Serial element-at-a-time `approx_matmul_with_adder` (original
    /// implementation, column-strided inner loop and all).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
    #[allow(clippy::too_many_arguments)]
    pub fn approx_matmul_with_adder(
        w_codes: &[i32],
        col_codes: &[i32],
        oc: usize,
        k: usize,
        m: usize,
        lut: &SignedLut,
        adder: &dyn axnn_axmul::adder::Adder,
        scale: f32,
    ) -> Tensor {
        assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
        assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
        let mut out = vec![0.0f32; oc * m];
        for i in 0..oc {
            let w_row = &w_codes[i * k..(i + 1) * k];
            for j in 0..m {
                let mut acc = 0i64;
                for (kk, &wik) in w_row.iter().enumerate() {
                    if wik == 0 {
                        continue;
                    }
                    acc = adder.add(acc, lut.get(col_codes[kk * m + j], wik));
                }
                out[i * m + j] = acc as f32 * scale;
            }
        }
        Tensor::from_vec(out, &[oc, m]).expect("size computed above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_axmul::adder::{Adder, ExactAdder, LoaAdder, TruncAdder};
    use axnn_axmul::{EvoLikeMul, ExactMul, TruncatedMul};
    use axnn_tensor::gemm;

    fn codes(v: &[i32]) -> Vec<i32> {
        v.to_vec()
    }

    /// Deterministic pseudo-random codes in `[-limit, limit]` without a
    /// `rand` dependency.
    fn lcg_codes(n: usize, limit: i32, seed: u64) -> Vec<i32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let span = (2 * limit + 1) as u64;
                ((state >> 33) % span) as i32 - limit
            })
            .collect()
    }

    #[test]
    fn exact_lut_matches_f32_gemm() {
        let lut = SignedLut::build(&ExactMul);
        let w = codes(&[1, -2, 3, 0, 5, -6]); // [2, 3]
        let x = codes(&[7, -1, 2, 4, 0, -3]); // [3, 2]
        let y = approx_matmul(&w, &x, 2, 3, 2, &lut, 1.0);
        let wf = Tensor::from_vec(w.iter().map(|&v| v as f32).collect(), &[2, 3]).unwrap();
        let xf = Tensor::from_vec(x.iter().map(|&v| v as f32).collect(), &[3, 2]).unwrap();
        assert_eq!(y, gemm::matmul(&wf, &xf));
    }

    #[test]
    fn scale_is_applied() {
        let lut = SignedLut::build(&ExactMul);
        let y = approx_matmul(&[2], &[3], 1, 1, 1, &lut, 0.25);
        assert_eq!(y.as_slice(), &[1.5]);
    }

    #[test]
    fn truncated_gemm_never_exceeds_exact_magnitude() {
        let lut = SignedLut::build(&TruncatedMul::new(5));
        // All-positive codes so products accumulate one-sidedly.
        let w: Vec<i32> = (1..=6).collect();
        let x: Vec<i32> = (10..=21).map(|v| v * 5).collect();
        let approx = approx_matmul(&w, &x, 2, 3, 4, &lut, 1.0);
        let exact_lut = SignedLut::build(&ExactMul);
        let exact = approx_matmul(&w, &x, 2, 3, 4, &exact_lut, 1.0);
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!(a <= e, "{a} > {e}");
            assert!(*a >= e - 6.0 * 32.0, "error bounded by taps × 2^t");
        }
    }

    #[test]
    fn exact_adder_matches_plain_approx_matmul() {
        let lut = SignedLut::build(&TruncatedMul::new(4));
        let w = codes(&[1, -2, 3, 0, 5, -6]);
        let x = codes(&[7, -1, 2, 4, 0, -3]);
        let plain = approx_matmul(&w, &x, 2, 3, 2, &lut, 0.5);
        let with_adder = approx_matmul_with_adder(&w, &x, 2, 3, 2, &lut, &ExactAdder, 0.5);
        assert_eq!(plain, with_adder);
    }

    #[test]
    fn loa_accumulation_adds_further_error() {
        let lut = SignedLut::build(&ExactMul);
        // Long accumulation with positive odd products exercises the OR'd
        // low bits on almost every step.
        let k = 32usize;
        let w: Vec<i32> = (0..k).map(|i| 1 + (i as i32 % 7)).collect();
        let x: Vec<i32> = (0..k).map(|i| 1 + (i as i32 % 13) * 2).collect();
        let exact = approx_matmul_with_adder(&w, &x, 1, k, 1, &lut, &ExactAdder, 1.0);
        let loa = approx_matmul_with_adder(&w, &x, 1, k, 1, &lut, &LoaAdder::new(4), 1.0);
        assert_ne!(exact, loa, "LOA must perturb a long accumulation");
        let rel = (loa.as_slice()[0] - exact.as_slice()[0]).abs() / exact.as_slice()[0];
        assert!(rel < 0.25, "LOA error stays moderate: {rel}");
    }

    #[test]
    fn zero_weights_short_circuit_to_zero() {
        let lut = SignedLut::build(&TruncatedMul::new(5));
        let y = approx_matmul(&[0, 0], &[99, -99], 1, 2, 1, &lut, 1.0);
        assert_eq!(y.as_slice(), &[0.0]);
    }

    /// The blocked/parallel kernels must reproduce the original serial
    /// kernels bit-for-bit, across multiplier models, odd shapes (exercising
    /// the `IB` tail and `JB` edge) and thread counts.
    #[test]
    fn blocked_kernels_bit_match_reference() {
        let luts = [
            SignedLut::build(&ExactMul),
            SignedLut::build(&TruncatedMul::new(4)),
            SignedLut::build(&EvoLikeMul::calibrated(228, 0.19)),
        ];
        let adders: [&dyn Adder; 3] = [&ExactAdder, &LoaAdder::new(4), &TruncAdder::new(3)];
        for (shape_idx, &(oc, k, m)) in [
            (1, 1, 1),
            (2, 3, 2),
            (4, 8, 16),
            (5, 7, 9),
            (9, 13, 300),
            (16, 20, 6),
        ]
        .iter()
        .enumerate()
        {
            let w = lcg_codes(oc * k, 7, shape_idx as u64 + 1);
            let x = lcg_codes(k * m, 127, shape_idx as u64 + 100);
            for lut in &luts {
                let want = reference::approx_matmul(&w, &x, oc, k, m, lut, 0.125);
                for threads in [1, 3, 8] {
                    axnn_par::set_threads(threads);
                    let got = approx_matmul(&w, &x, oc, k, m, lut, 0.125);
                    let same = want
                        .as_slice()
                        .iter()
                        .zip(got.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "approx_matmul {}x{}x{} lut={}", oc, k, m, lut.name());
                }
                for adder in adders {
                    let want =
                        reference::approx_matmul_with_adder(&w, &x, oc, k, m, lut, adder, 0.125);
                    let got = approx_matmul_with_adder(&w, &x, oc, k, m, lut, adder, 0.125);
                    let same = want
                        .as_slice()
                        .iter()
                        .zip(got.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        same,
                        "with_adder {}x{}x{} lut={} adder={}",
                        oc,
                        k,
                        m,
                        lut.name(),
                        adder.name()
                    );
                }
            }
        }
        axnn_par::set_threads(1);
    }
}
