//! Approximate integer GEMM over quantizer codes (paper eq. 4).

use crate::signed_lut::SignedLut;
use axnn_tensor::Tensor;

/// Computes `ỹᵢⱼ = Σₖ g̃(Wᵢₖ, Xₖⱼ)` over integer codes, accumulating in
/// `i64`, and returns the result scaled by `scale = s_w · s_x` as an f32
/// tensor of shape `[OC, M]`.
///
/// `w_codes` is the row-major `[OC, K]` weight-code matrix and `col_codes`
/// the `[K, M]` input-code matrix.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
pub fn approx_matmul(
    w_codes: &[i32],
    col_codes: &[i32],
    oc: usize,
    k: usize,
    m: usize,
    lut: &SignedLut,
    scale: f32,
) -> Tensor {
    assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
    assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
    let mut out = vec![0.0f32; oc * m];
    for i in 0..oc {
        let w_row = &w_codes[i * k..(i + 1) * k];
        // Accumulate into an i64 row to keep the integer semantics exact.
        let mut acc = vec![0i64; m];
        for (kk, &wik) in w_row.iter().enumerate() {
            if wik == 0 {
                continue; // exact and approximate products are both zero
            }
            let col_row = &col_codes[kk * m..(kk + 1) * m];
            for (a, &xkj) in acc.iter_mut().zip(col_row) {
                *a += lut.get(xkj, wik);
            }
        }
        for (o, a) in out[i * m..(i + 1) * m].iter_mut().zip(&acc) {
            *o = *a as f32 * scale;
        }
    }
    Tensor::from_vec(out, &[oc, m]).expect("size computed above")
}

/// [`approx_matmul`] with an **approximate accumulator**: every partial sum
/// goes through the behavioural adder instead of exact `+` — the paper's
/// outlook of combining "more than one approximation technique into the CNN
/// computation".
///
/// With [`ExactAdder`](axnn_axmul::adder::ExactAdder) this is bit-identical
/// to [`approx_matmul`].
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(oc, k, m)`.
#[allow(clippy::too_many_arguments)]
pub fn approx_matmul_with_adder(
    w_codes: &[i32],
    col_codes: &[i32],
    oc: usize,
    k: usize,
    m: usize,
    lut: &SignedLut,
    adder: &dyn axnn_axmul::adder::Adder,
    scale: f32,
) -> Tensor {
    assert_eq!(w_codes.len(), oc * k, "weight code matrix size mismatch");
    assert_eq!(col_codes.len(), k * m, "input code matrix size mismatch");
    let mut out = vec![0.0f32; oc * m];
    for i in 0..oc {
        let w_row = &w_codes[i * k..(i + 1) * k];
        for j in 0..m {
            let mut acc = 0i64;
            for (kk, &wik) in w_row.iter().enumerate() {
                if wik == 0 {
                    continue;
                }
                acc = adder.add(acc, lut.get(col_codes[kk * m + j], wik));
            }
            out[i * m + j] = acc as f32 * scale;
        }
    }
    Tensor::from_vec(out, &[oc, m]).expect("size computed above")
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_axmul::adder::{ExactAdder, LoaAdder};
    use axnn_axmul::{ExactMul, TruncatedMul};
    use axnn_tensor::gemm;

    fn codes(v: &[i32]) -> Vec<i32> {
        v.to_vec()
    }

    #[test]
    fn exact_lut_matches_f32_gemm() {
        let lut = SignedLut::build(&ExactMul);
        let w = codes(&[1, -2, 3, 0, 5, -6]); // [2, 3]
        let x = codes(&[7, -1, 2, 4, 0, -3]); // [3, 2]
        let y = approx_matmul(&w, &x, 2, 3, 2, &lut, 1.0);
        let wf = Tensor::from_vec(w.iter().map(|&v| v as f32).collect(), &[2, 3]).unwrap();
        let xf = Tensor::from_vec(x.iter().map(|&v| v as f32).collect(), &[3, 2]).unwrap();
        assert_eq!(y, gemm::matmul(&wf, &xf));
    }

    #[test]
    fn scale_is_applied() {
        let lut = SignedLut::build(&ExactMul);
        let y = approx_matmul(&[2], &[3], 1, 1, 1, &lut, 0.25);
        assert_eq!(y.as_slice(), &[1.5]);
    }

    #[test]
    fn truncated_gemm_never_exceeds_exact_magnitude() {
        let lut = SignedLut::build(&TruncatedMul::new(5));
        // All-positive codes so products accumulate one-sidedly.
        let w: Vec<i32> = (1..=6).collect();
        let x: Vec<i32> = (10..=21).map(|v| v * 5).collect();
        let approx = approx_matmul(&w, &x, 2, 3, 4, &lut, 1.0);
        let exact_lut = SignedLut::build(&ExactMul);
        let exact = approx_matmul(&w, &x, 2, 3, 4, &exact_lut, 1.0);
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            assert!(a <= e, "{a} > {e}");
            assert!(*a >= e - 6.0 * 32.0, "error bounded by taps × 2^t");
        }
    }

    #[test]
    fn exact_adder_matches_plain_approx_matmul() {
        let lut = SignedLut::build(&TruncatedMul::new(4));
        let w = codes(&[1, -2, 3, 0, 5, -6]);
        let x = codes(&[7, -1, 2, 4, 0, -3]);
        let plain = approx_matmul(&w, &x, 2, 3, 2, &lut, 0.5);
        let with_adder = approx_matmul_with_adder(&w, &x, 2, 3, 2, &lut, &ExactAdder, 0.5);
        assert_eq!(plain, with_adder);
    }

    #[test]
    fn loa_accumulation_adds_further_error() {
        let lut = SignedLut::build(&ExactMul);
        // Long accumulation with positive odd products exercises the OR'd
        // low bits on almost every step.
        let k = 32usize;
        let w: Vec<i32> = (0..k).map(|i| 1 + (i as i32 % 7)).collect();
        let x: Vec<i32> = (0..k).map(|i| 1 + (i as i32 % 13) * 2).collect();
        let exact = approx_matmul_with_adder(&w, &x, 1, k, 1, &lut, &ExactAdder, 1.0);
        let loa = approx_matmul_with_adder(&w, &x, 1, k, 1, &lut, &LoaAdder::new(4), 1.0);
        assert_ne!(exact, loa, "LOA must perturb a long accumulation");
        let rel = (loa.as_slice()[0] - exact.as_slice()[0]).abs() / exact.as_slice()[0];
        assert!(rel < 0.25, "LOA error stays moderate: {rel}");
    }

    #[test]
    fn zero_weights_short_circuit_to_zero() {
        let lut = SignedLut::build(&TruncatedMul::new(5));
        let y = approx_matmul(&[0, 0], &[99, -99], 1, 2, 1, &lut, 1.0);
        assert_eq!(y.as_slice(), &[0.0]);
    }
}
