//! Signed product lookup tables over the 8A4W code range.

use axnn_axmul::Multiplier;

const X_OFFSET: i32 = 128;
const W_OFFSET: i32 = 8;
const X_SPAN: usize = 256; // codes −128..=127 (symmetric quantizers use −127..=127)
const W_SPAN: usize = 16; // codes −8..=7

/// An exhaustive signed product table: every `(x, w)` code pair of the
/// 8A4W range maps to the multiplier's signed product.
///
/// This is the ProxSim trick that makes approximate simulation cheap: the
/// behavioural model runs once per operand pair at table-build time, and
/// every GEMM MAC afterwards is a single indexed load.
///
/// The table is stored **w-major**: the 256 products of one weight code are
/// contiguous (see [`SignedLut::w_row`]), so a GEMM inner loop that holds
/// `w` fixed while streaming activation codes touches one cache-resident
/// 1 KiB row instead of striding through the whole table.
///
/// ```
/// use axnn_axmul::{ExactMul, Multiplier};
/// use axnn_proxsim::SignedLut;
///
/// let lut = SignedLut::build(&ExactMul);
/// assert_eq!(lut.get(-127, 7), -889);
/// assert_eq!(lut.get(5, -3), -15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedLut {
    table: Vec<i32>,
    name: String,
}

impl SignedLut {
    /// Tabulates a multiplier over the full signed code range.
    pub fn build(m: &dyn Multiplier) -> Self {
        let mut table = vec![0i32; X_SPAN * W_SPAN];
        for x in -X_OFFSET..X_OFFSET {
            for w in -W_OFFSET..W_OFFSET {
                let idx = Self::index(x, w);
                table[idx] = m.mul_signed(x, w) as i32;
            }
        }
        Self {
            table,
            name: m.name().to_string(),
        }
    }

    #[inline]
    fn index(x: i32, w: i32) -> usize {
        debug_assert!(
            (-X_OFFSET..X_OFFSET).contains(&x),
            "x code {x} out of range"
        );
        debug_assert!(
            (-W_OFFSET..W_OFFSET).contains(&w),
            "w code {w} out of range"
        );
        ((w + W_OFFSET) as usize) * X_SPAN + ((x + X_OFFSET) as usize)
    }

    /// Signed product of two quantizer codes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `x ∉ [−128, 127]` or `w ∉ [−8, 7]`.
    #[inline]
    pub fn get(&self, x: i32, w: i32) -> i64 {
        self.table[Self::index(x, w)] as i64
    }

    /// The 256 contiguous products for weight code `w`, indexed by
    /// `x + 128`. This is the cache-friendly GEMM access path: one row is
    /// 1 KiB and stays resident while a whole activation stripe streams
    /// past it.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `w ∉ [−8, 7]`.
    #[inline]
    pub fn w_row(&self, w: i32) -> &[i32] {
        debug_assert!(
            (-W_OFFSET..W_OFFSET).contains(&w),
            "w code {w} out of range"
        );
        let base = ((w + W_OFFSET) as usize) * X_SPAN;
        &self.table[base..base + X_SPAN]
    }

    /// Name of the tabulated multiplier.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_axmul::{EvoLikeMul, ExactMul, TruncatedMul};

    #[test]
    fn exact_table_matches_products() {
        let lut = SignedLut::build(&ExactMul);
        for x in [-127i32, -50, -1, 0, 1, 99, 127] {
            for w in [-7i32, -3, 0, 2, 7] {
                assert_eq!(lut.get(x, w), (x * w) as i64);
            }
        }
    }

    #[test]
    fn table_matches_behavioural_model_everywhere() {
        let m = TruncatedMul::new(4);
        let lut = SignedLut::build(&m);
        for x in -127i32..=127 {
            for w in -7i32..=7 {
                assert_eq!(lut.get(x, w), m.mul_signed(x, w), "({x},{w})");
            }
        }
    }

    #[test]
    fn w_row_agrees_with_get() {
        let lut = SignedLut::build(&TruncatedMul::new(3));
        for w in -8i32..=7 {
            let row = lut.w_row(w);
            assert_eq!(row.len(), 256);
            for x in -128i32..=127 {
                assert_eq!(row[(x + 128) as usize] as i64, lut.get(x, w), "({x},{w})");
            }
        }
    }

    #[test]
    fn evo_table_is_deterministic() {
        let m = EvoLikeMul::calibrated(228, 0.19);
        let a = SignedLut::build(&m);
        let b = SignedLut::build(&m);
        assert_eq!(a, b);
        assert_eq!(a.name(), "evo228");
    }
}
