//! The paper's piecewise-linear approximation-error model (eq. 11–13).

use axnn_tensor::Tensor;

/// The error model of eq. (11): `f(y) = clamp(k·y + c, lo, hi)` — the
/// paper writes it as `min(a, max(k·y + c, b))` with `a = hi`, `b = lo`.
///
/// Its derivative is `k` inside the linear region and `0` on the plateaus
/// (eq. 13); the gradient-estimation factor applied to the upstream
/// gradient is `1 + f'(y)` (eq. 10/12).
///
/// For unbiased multipliers (the EvoApprox family) the fit degenerates to a
/// constant (`k = 0`), making GE identical to the plain STE — the paper's
/// §IV-B observation, which [`is_constant`](Self::is_constant) exposes.
///
/// ```
/// use axnn_proxsim::PiecewiseLinearError;
///
/// let f = PiecewiseLinearError::new(-0.02, 0.0, -3.0, 0.5);
/// assert_eq!(f.value(0.0), 0.0);
/// assert_eq!(f.value(1000.0), -3.0);    // lower plateau
/// assert_eq!(f.derivative(10.0), -0.02);
/// assert_eq!(f.derivative(1000.0), 0.0);
/// assert!(!f.is_constant());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseLinearError {
    slope: f32,
    intercept: f32,
    lo: f32,
    hi: f32,
}

impl PiecewiseLinearError {
    /// Creates a model with the given slope `k`, intercept `c` and plateau
    /// clamps `lo ≤ hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or any parameter is not finite.
    pub fn new(slope: f32, intercept: f32, lo: f32, hi: f32) -> Self {
        assert!(
            slope.is_finite() && intercept.is_finite() && lo.is_finite() && hi.is_finite(),
            "model parameters must be finite"
        );
        assert!(lo <= hi, "plateaus must satisfy lo <= hi");
        Self {
            slope,
            intercept,
            lo,
            hi,
        }
    }

    /// A constant model `f(y) = c` (zero derivative everywhere) — the
    /// unbiased-multiplier case where GE ≡ STE.
    pub fn constant(c: f32) -> Self {
        Self::new(0.0, c, c, c)
    }

    /// The linear-region slope `k̃`.
    pub fn slope(&self) -> f32 {
        self.slope
    }

    /// Estimated error `f(y)` at output value `y`.
    pub fn value(&self, y: f32) -> f32 {
        (self.slope * y + self.intercept).clamp(self.lo, self.hi)
    }

    /// Derivative `f'(y)`: the slope inside the linear region, zero on the
    /// plateaus (eq. 13).
    pub fn derivative(&self, y: f32) -> f32 {
        let lin = self.slope * y + self.intercept;
        if lin > self.lo && lin < self.hi {
            self.slope
        } else {
            0.0
        }
    }

    /// Whether the model is constant (`∂f/∂y = 0` everywhere): gradient
    /// estimation with this model is exactly the straight-through estimator.
    pub fn is_constant(&self) -> bool {
        self.slope == 0.0 || self.lo == self.hi
    }

    /// The `(1 + K)` elementwise factor of eq. (12) for an output tensor
    /// `y` (the *accurate* GEMM output, per the paper's `f(y_q)`).
    pub fn grad_scale(&self, y: &Tensor) -> Tensor {
        y.map(|v| 1.0 + self.derivative(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_clamps_to_plateaus() {
        let f = PiecewiseLinearError::new(-0.1, 1.0, -2.0, 1.5);
        assert_eq!(f.value(-100.0), 1.5);
        assert_eq!(f.value(0.0), 1.0);
        assert_eq!(f.value(100.0), -2.0);
    }

    #[test]
    fn derivative_is_zero_on_plateaus() {
        let f = PiecewiseLinearError::new(-0.1, 1.0, -2.0, 1.5);
        assert_eq!(f.derivative(-100.0), 0.0);
        assert_eq!(f.derivative(0.0), -0.1);
        assert_eq!(f.derivative(100.0), 0.0);
    }

    #[test]
    fn constant_model_is_ste() {
        let f = PiecewiseLinearError::constant(-0.5);
        assert!(f.is_constant());
        assert_eq!(f.value(42.0), -0.5);
        assert_eq!(f.derivative(42.0), 0.0);
        let y = Tensor::from_vec(vec![-1.0, 0.0, 5.0], &[3]).unwrap();
        assert_eq!(f.grad_scale(&y).as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn grad_scale_applies_one_plus_derivative() {
        let f = PiecewiseLinearError::new(-0.25, 0.0, -10.0, 10.0);
        let y = Tensor::from_vec(vec![1.0, 1000.0], &[2]).unwrap();
        let s = f.grad_scale(&y);
        assert_eq!(s.as_slice()[0], 0.75);
        assert_eq!(s.as_slice()[1], 1.0); // clamped region
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_plateaus() {
        let _ = PiecewiseLinearError::new(0.0, 0.0, 1.0, -1.0);
    }
}
