//! The approximate-multiplier layer executor.

use crate::error_model::PiecewiseLinearError;
use crate::gemm::{approx_matmul, approx_matmul_with_adder};
use crate::signed_lut::SignedLut;
use axnn_axmul::adder::Adder;
use axnn_axmul::Multiplier;
use axnn_nn::{ExecOutput, ExecutorKind, Layer, LayerExecutor, Mode, Sequential};
use axnn_quant::{ActRangeCalibrator, QuantSpec, Quantizer};
use axnn_tensor::{gemm, Tensor};
use std::sync::Arc;

/// Layer executor computing `y ≈ W_q · X_q` with an approximate multiplier
/// over 8A4W-quantized codes (the ProxSim execution model).
///
/// - Weights are quantized layer-wise from their current abs-max (power-of-
///   two step); activations use a step frozen by MinPropQE calibration.
/// - The forward GEMM accumulates LUT-served approximate products in `i64`
///   (eq. 4) and rescales by `s_w · s_x`.
/// - The backward pass (in `axnn-nn`) is the exact-GEMM STE of eq. (5); if
///   an error model is attached, the upstream gradient is scaled by
///   `1 + f'(y)` evaluated on the *accurate* quantized output (eq. 10/12) —
///   gradient estimation. A constant model degenerates to the plain STE.
#[derive(Debug)]
pub struct ApproxExecutor {
    lut: Arc<SignedLut>,
    x_spec: QuantSpec,
    w_spec: QuantSpec,
    calibrator: ActRangeCalibrator,
    x_quantizer: Option<Quantizer>,
    error_model: Option<PiecewiseLinearError>,
    adder: Option<Arc<dyn Adder>>,
    /// Pre-formatted health keys (`eps:<layer>`, ...); empty until the
    /// owning layer hands over its label, which also gates all health
    /// recording (no telemetry without an attribution).
    eps_label: String,
    res_label: String,
    lin_label: String,
    sat_x_label: String,
    sat_w_label: String,
    /// Forward calls seen while health telemetry was on; drives the ε
    /// sampling period.
    health_calls: u64,
}

/// ε(y) needs an exact reference GEMM of the same shape as the approximate
/// one, so it is sampled: every `EPS_SAMPLE_PERIOD`-th health-enabled call
/// per executor (the first call always samples). Saturation ratios are
/// cheap scans and recorded on every health-enabled call.
const EPS_SAMPLE_PERIOD: u64 = 16;

impl ApproxExecutor {
    /// Creates an 8A4W approximate executor over a prebuilt LUT.
    ///
    /// `error_model` enables gradient estimation; pass `None` for the plain
    /// STE backward.
    pub fn new(lut: Arc<SignedLut>, error_model: Option<PiecewiseLinearError>) -> Self {
        Self {
            lut,
            x_spec: QuantSpec::activations_8bit(),
            w_spec: QuantSpec::weights_4bit(),
            calibrator: ActRangeCalibrator::new(),
            x_quantizer: None,
            error_model,
            adder: None,
            eps_label: String::new(),
            res_label: String::new(),
            lin_label: String::new(),
            sat_x_label: String::new(),
            sat_w_label: String::new(),
            health_calls: 0,
        }
    }

    /// Accumulates through a behavioural approximate adder instead of exact
    /// `+` (builder style) — the paper's outlook of stacking a second
    /// approximation technique. `None`/unset keeps exact accumulation.
    pub fn with_adder(mut self, adder: Arc<dyn Adder>) -> Self {
        self.adder = Some(adder);
        self
    }

    /// Pre-sets the frozen activation quantizer (e.g. transferred from the
    /// quantization stage) instead of calibrating from scratch.
    pub fn with_activation_quantizer(mut self, q: Quantizer) -> Self {
        self.x_quantizer = Some(q);
        self
    }

    /// The attached error model, if any.
    pub fn error_model(&self) -> Option<PiecewiseLinearError> {
        self.error_model
    }

    /// The multiplier name served by the LUT.
    pub fn multiplier_name(&self) -> &str {
        self.lut.name()
    }

    fn batch_x_quantizer(&mut self, col: &Tensor) -> Option<Quantizer> {
        if self.x_quantizer.is_none() {
            if let Some(q) = self.calibrator.freeze(self.x_spec) {
                self.x_quantizer = Some(q);
            }
        }
        self.x_quantizer.or_else(|| {
            let abs_max = col.abs_max();
            (abs_max > 0.0).then(|| Quantizer::for_abs_max(abs_max, self.x_spec))
        })
    }

    /// Records the per-layer health metrics for one forward call: clip
    /// rates every call, and on sampled calls the ε(y) histogram, the GE
    /// residual histogram (ε − f(y_q), what the drift monitor pools) and
    /// the K-mask linear-region coverage. `y_codes` is the exact quantized
    /// output in code units when the GE path already computed it;
    /// otherwise the sampled path computes its own reference GEMM
    /// (observation only — deliberately not counted as run work).
    #[allow(clippy::too_many_arguments)]
    fn record_health(
        &mut self,
        y: &Tensor,
        w_eff: &Tensor,
        col_eff: &Tensor,
        wmat: &Tensor,
        col: &Tensor,
        wq: &Quantizer,
        xq: &Quantizer,
        scale: f32,
        y_codes: Option<&Tensor>,
    ) {
        use axnn_obs::HistSpec;

        axnn_obs::record_ratio(&self.sat_x_label, xq.saturated(col), col.len() as u64);
        axnn_obs::record_ratio(&self.sat_w_label, wq.saturated(wmat), wmat.len() as u64);

        let sampled = self.health_calls.is_multiple_of(EPS_SAMPLE_PERIOD);
        self.health_calls += 1;
        if !sampled || scale == 0.0 {
            return;
        }
        let computed;
        let codes = match y_codes {
            Some(t) => t,
            None => {
                let mut t = gemm::matmul(w_eff, col_eff);
                t.scale(1.0 / scale);
                computed = t;
                &computed
            }
        };
        let inv = 1.0 / scale;
        axnn_obs::record_values(
            &self.eps_label,
            HistSpec::eps(),
            y.as_slice()
                .iter()
                .zip(codes.as_slice())
                .map(|(&ya, &yc)| (ya * inv - yc) as f64),
        );
        if let Some(model) = &self.error_model {
            axnn_obs::record_values(
                &self.res_label,
                HistSpec::eps(),
                y.as_slice()
                    .iter()
                    .zip(codes.as_slice())
                    .map(|(&ya, &yc)| (ya * inv - yc - model.value(yc)) as f64),
            );
            let linear = codes
                .as_slice()
                .iter()
                .filter(|&&yc| model.derivative(yc) != 0.0)
                .count() as u64;
            axnn_obs::record_ratio(&self.lin_label, linear, codes.len() as u64);
        }
    }
}

impl LayerExecutor for ApproxExecutor {
    fn forward(&mut self, wmat: &Tensor, col: &Tensor, mode: Mode) -> ExecOutput {
        if mode == Mode::Calibrate {
            self.calibrator.observe(wmat, col, self.x_spec);
            self.x_quantizer = None;
        }
        let w_abs = wmat.abs_max();
        let wq = if w_abs > 0.0 {
            Quantizer::for_abs_max(w_abs, self.w_spec)
        } else {
            Quantizer::with_step(1.0, self.w_spec)
        };
        let xq = self
            .batch_x_quantizer(col)
            .unwrap_or_else(|| Quantizer::with_step(1.0, self.x_spec));

        let (w_codes, w_eff) = wq.quantize_tensor(wmat);
        let (x_codes, col_eff) = xq.quantize_tensor(col);
        let (oc, k) = (wmat.shape()[0], wmat.shape()[1]);
        let m = col.shape()[1];
        let scale = wq.step() * xq.step();
        let y = match &self.adder {
            Some(adder) => approx_matmul_with_adder(
                &w_codes,
                &x_codes,
                oc,
                k,
                m,
                &self.lut,
                adder.as_ref(),
                scale,
            ),
            None => approx_matmul(&w_codes, &x_codes, oc, k, m, &self.lut, scale),
        };

        // GE needs f'(y) on the accurate quantized output y_q (eq. 10);
        // compute it only when a non-constant model is attached. The model
        // is fitted in integer-accumulator (code-product) units, which are
        // scale-invariant across layers, so evaluate on y_exact / scale.
        let mut ge_codes = None;
        let grad_scale = match &self.error_model {
            Some(model) if !model.is_constant() => {
                if axnn_obs::enabled() {
                    axnn_obs::count(axnn_obs::Counter::GemmMacs, (oc * k * m) as u64);
                }
                let mut y_codes = gemm::matmul(&w_eff, &col_eff);
                y_codes.scale(1.0 / scale);
                let gs = model.grad_scale(&y_codes);
                ge_codes = Some(y_codes);
                Some(gs)
            }
            _ => None,
        };

        if axnn_obs::health_enabled() && !self.eps_label.is_empty() {
            self.record_health(
                &y,
                &w_eff,
                &col_eff,
                wmat,
                col,
                &wq,
                &xq,
                scale,
                ge_codes.as_ref(),
            );
        }

        ExecOutput {
            y,
            wmat_eff: w_eff,
            col_eff,
            grad_scale,
        }
    }

    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Approximate
    }

    fn set_obs_label(&mut self, label: &str) {
        self.eps_label = format!("eps:{label}");
        self.res_label = format!("ge_res:{label}");
        self.lin_label = format!("ge_lin:{label}");
        self.sat_x_label = format!("sat_x:{label}");
        self.sat_w_label = format!("sat_w:{label}");
    }

    fn compile_backend(&self, wmat: &Tensor) -> Option<Box<dyn axnn_nn::GemmBackend>> {
        // Gradient estimation needs the exact reference GEMM on every
        // forward (eq. 10) — that defeats the fused inference path, so a
        // sloped error model keeps the whole model on the interpreter.
        if let Some(model) = &self.error_model {
            if !model.is_constant() {
                return None;
            }
        }
        // Weights are frozen at compile time: quantize them to codes once
        // with the same abs-max chain as the interpreter forward.
        let w_abs = wmat.abs_max();
        let wq = if w_abs > 0.0 {
            Quantizer::for_abs_max(w_abs, self.w_spec)
        } else {
            Quantizer::with_step(1.0, self.w_spec)
        };
        let (w_codes, _) = wq.quantize_tensor(wmat);
        Some(Box::new(ApproxBackend {
            lut: Arc::clone(&self.lut),
            adder: self.adder.clone(),
            w_codes,
            wq_step: wq.step(),
            x_quantizer: self
                .x_quantizer
                .or_else(|| self.calibrator.freeze(self.x_spec)),
            x_spec: self.x_spec,
            oc: wmat.shape()[0],
            k: wmat.shape()[1],
        }))
    }
}

/// Compiled-graph GEMM core for the approximate executor: weight codes
/// quantized once at compile time, the interpreter's activation
/// quantization chain per batch, LUT-served approximate accumulation, and
/// the bias+activation epilogue applied over the raw approximate output.
/// Bit-identical to [`ApproxExecutor::forward`].
#[derive(Debug)]
struct ApproxBackend {
    lut: Arc<SignedLut>,
    adder: Option<Arc<dyn Adder>>,
    w_codes: Vec<i32>,
    wq_step: f32,
    x_quantizer: Option<Quantizer>,
    x_spec: QuantSpec,
    oc: usize,
    k: usize,
}

impl axnn_nn::GemmBackend for ApproxBackend {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Approximate
    }

    fn out_rows(&self) -> usize {
        self.oc
    }

    fn forward(&mut self, col: &Tensor, bias: Option<&[f32]>, ep: gemm::Epilogue, out: &mut [f32]) {
        let xq = self
            .x_quantizer
            .or_else(|| {
                let abs_max = col.abs_max();
                (abs_max > 0.0).then(|| Quantizer::for_abs_max(abs_max, self.x_spec))
            })
            .unwrap_or_else(|| Quantizer::with_step(1.0, self.x_spec));
        let x_codes: Vec<i32> = col
            .as_slice()
            .iter()
            .map(|&x| xq.quantize_code(x))
            .collect();
        let m = col.shape()[1];
        let scale = self.wq_step * xq.step();
        let y = match &self.adder {
            Some(adder) => approx_matmul_with_adder(
                &self.w_codes,
                &x_codes,
                self.oc,
                self.k,
                m,
                &self.lut,
                adder.as_ref(),
                scale,
            ),
            None => approx_matmul(
                &self.w_codes,
                &x_codes,
                self.oc,
                self.k,
                m,
                &self.lut,
                scale,
            ),
        };
        let ys = y.as_slice();
        match bias {
            Some(b) => {
                for r in 0..self.oc {
                    let br = b[r];
                    for (o, &v) in out[r * m..(r + 1) * m]
                        .iter_mut()
                        .zip(&ys[r * m..(r + 1) * m])
                    {
                        *o = ep.apply(v + br);
                    }
                }
            }
            None => {
                for (o, &v) in out.iter_mut().zip(ys) {
                    *o = ep.apply(v);
                }
            }
        }
    }
}

/// Swaps an [`ApproxExecutor`] into every conv/FC layer of `net`, sharing
/// one LUT for the given multiplier (uniform approximation, as in the
/// paper's experiments).
///
/// Run a [`Mode::Calibrate`] pass afterwards to freeze activation steps.
pub fn approximate_network(
    net: &mut Sequential,
    multiplier: &dyn Multiplier,
    error_model: Option<PiecewiseLinearError>,
) {
    approximate_network_where(net, multiplier, error_model, |_, _| true);
}

/// Partial approximation: swaps an [`ApproxExecutor`] only into the conv/FC
/// layers selected by `select(index, label)`, where `index` counts GEMM
/// layers in network order. Unselected layers keep their current executor.
///
/// This implements the *partial approximation* regime the paper contrasts
/// with its uniform ("full") approximation (§II): savings are bounded by
/// the fraction of approximated MACs, but so is the accuracy degradation.
pub fn approximate_network_where(
    net: &mut Sequential,
    multiplier: &dyn Multiplier,
    error_model: Option<PiecewiseLinearError>,
    mut select: impl FnMut(usize, &str) -> bool,
) {
    let lut = Arc::new(SignedLut::build(multiplier));
    let mut index = 0usize;
    net.visit_gemm_cores(&mut |core| {
        if select(index, &core.label) {
            core.set_executor(Box::new(ApproxExecutor::new(Arc::clone(&lut), error_model)));
        }
        index += 1;
    });
}

/// Heterogeneous approximation: assigns each GEMM layer (network order) its
/// own prebuilt LUT and optional error model. `None` entries keep the
/// layer's current executor (the caller typically quantizes those to 8A4W).
///
/// Unlike [`approximate_network_where`], which shares one multiplier across
/// the selected layers, this is the per-layer plumbing behind the
/// `axnn-search` assignment space: callers build one [`SignedLut`] per
/// distinct multiplier in the pool and hand out `Arc` clones per layer.
///
/// Run a [`Mode::Calibrate`] pass afterwards to freeze activation steps.
///
/// # Panics
///
/// Panics if `assignment.len()` differs from the network's GEMM layer count.
pub fn approximate_network_assigned(
    net: &mut Sequential,
    assignment: &[Option<(Arc<SignedLut>, Option<PiecewiseLinearError>)>],
) {
    let mut index = 0usize;
    net.visit_gemm_cores(&mut |core| {
        assert!(
            index < assignment.len(),
            "assignment covers {} layers but the network has more",
            assignment.len()
        );
        if let Some((lut, error_model)) = &assignment[index] {
            core.set_executor(Box::new(ApproxExecutor::new(Arc::clone(lut), *error_model)));
        }
        index += 1;
    });
    assert_eq!(
        index,
        assignment.len(),
        "assignment covers {} layers but the network has {index}",
        assignment.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn_axmul::{EvoLikeMul, ExactMul, TruncatedMul};
    use axnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lut(m: &dyn Multiplier) -> Arc<SignedLut> {
        Arc::new(SignedLut::build(m))
    }

    #[test]
    fn exact_multiplier_reduces_to_quantized_executor() {
        let mut rng = StdRng::seed_from_u64(70);
        let wmat = init::uniform(&[4, 8], -0.5, 0.5, &mut rng);
        let col = init::uniform(&[8, 6], -1.0, 1.0, &mut rng);
        let mut approx = ApproxExecutor::new(lut(&ExactMul), None);
        let mut quant = axnn_quant::QuantExecutor::new_8a4w();
        let ya = approx.forward(&wmat, &col, Mode::Eval);
        let yq = quant.forward(&wmat, &col, Mode::Eval);
        for (a, b) in ya.y.as_slice().iter().zip(yq.y.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert_eq!(approx.kind(), ExecutorKind::Approximate);
    }

    #[test]
    fn truncated_multiplier_shrinks_magnitudes() {
        let mut rng = StdRng::seed_from_u64(71);
        // All-positive operands make the truncation bias visible.
        let wmat = init::uniform(&[4, 16], 0.1, 0.5, &mut rng);
        let col = init::uniform(&[16, 8], 0.1, 1.0, &mut rng);
        let mut approx = ApproxExecutor::new(lut(&TruncatedMul::new(5)), None);
        let mut exact = ApproxExecutor::new(lut(&ExactMul), None);
        let ya = approx.forward(&wmat, &col, Mode::Eval);
        let ye = exact.forward(&wmat, &col, Mode::Eval);
        let mut shrunk = 0;
        for (a, e) in ya.y.as_slice().iter().zip(ye.y.as_slice()) {
            assert!(*a <= *e + 1e-4, "truncation can only shrink: {a} vs {e}");
            if *a < *e - 1e-4 {
                shrunk += 1;
            }
        }
        assert!(shrunk > 0, "trunc5 must actually lose magnitude");
    }

    #[test]
    fn grad_scale_present_only_with_sloped_model() {
        let mut rng = StdRng::seed_from_u64(72);
        let wmat = init::uniform(&[2, 4], -0.5, 0.5, &mut rng);
        let col = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let l = lut(&TruncatedMul::new(5));

        let mut no_model = ApproxExecutor::new(Arc::clone(&l), None);
        assert!(no_model
            .forward(&wmat, &col, Mode::Train)
            .grad_scale
            .is_none());

        let constant = PiecewiseLinearError::constant(-0.3);
        let mut const_model = ApproxExecutor::new(Arc::clone(&l), Some(constant));
        assert!(
            const_model
                .forward(&wmat, &col, Mode::Train)
                .grad_scale
                .is_none(),
            "constant model is STE; no scale materialised"
        );

        let sloped = PiecewiseLinearError::new(-0.05, 0.0, -10.0, 10.0);
        let mut ge = ApproxExecutor::new(l, Some(sloped));
        let out = ge.forward(&wmat, &col, Mode::Train);
        let scale = out.grad_scale.expect("sloped model produces a scale");
        assert_eq!(scale.shape(), out.y.shape());
        assert!(scale.as_slice().iter().any(|&s| (s - 1.0).abs() > 1e-6));
    }

    #[test]
    fn approximate_network_swaps_every_core() {
        let mut rng = StdRng::seed_from_u64(73);
        let mut net = Sequential::new(vec![
            Box::new(axnn_nn::Linear::new(4, 6, true, &mut rng)),
            Box::new(axnn_nn::Activation::new(axnn_nn::ActivationKind::Relu)),
            Box::new(axnn_nn::Linear::new(6, 2, true, &mut rng)),
        ]);
        approximate_network(&mut net, &EvoLikeMul::calibrated(228, 0.19), None);
        let mut kinds = Vec::new();
        net.visit_gemm_cores(&mut |c| kinds.push(c.executor.kind()));
        assert_eq!(kinds, vec![ExecutorKind::Approximate; 2]);
        // Forward still works end to end.
        let y = net.forward(&init::uniform(&[3, 4], -1.0, 1.0, &mut rng), Mode::Eval);
        assert_eq!(y.shape(), &[3, 2]);
    }

    #[test]
    fn assigned_approximation_gives_each_layer_its_own_multiplier() {
        let mut rng = StdRng::seed_from_u64(79);
        let mut net = Sequential::new(vec![
            Box::new(axnn_nn::Linear::new(4, 6, true, &mut rng)),
            Box::new(axnn_nn::Activation::new(axnn_nn::ActivationKind::Relu)),
            Box::new(axnn_nn::Linear::new(6, 5, true, &mut rng)),
            Box::new(axnn_nn::Linear::new(5, 2, true, &mut rng)),
        ]);
        let trunc = lut(&TruncatedMul::new(5));
        let evo = lut(&EvoLikeMul::calibrated(228, 0.19));
        approximate_network_assigned(
            &mut net,
            &[
                Some((Arc::clone(&trunc), None)),
                None,
                Some((Arc::clone(&evo), None)),
            ],
        );
        let mut seen = Vec::new();
        net.visit_gemm_cores(&mut |c| seen.push(c.executor.kind()));
        assert_eq!(
            seen,
            vec![
                ExecutorKind::Approximate,
                ExecutorKind::Exact,
                ExecutorKind::Approximate
            ],
            "None entries keep the current executor"
        );
        let y = net.forward(&init::uniform(&[3, 4], -1.0, 1.0, &mut rng), Mode::Eval);
        assert_eq!(y.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "assignment covers 1 layers")]
    fn assigned_approximation_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(80);
        let mut net = Sequential::new(vec![
            Box::new(axnn_nn::Linear::new(4, 4, true, &mut rng)),
            Box::new(axnn_nn::Linear::new(4, 2, true, &mut rng)),
        ]);
        approximate_network_assigned(&mut net, &[Some((lut(&TruncatedMul::new(3)), None))]);
    }

    #[test]
    fn approximate_adder_changes_outputs_and_exact_adder_does_not() {
        use axnn_axmul::adder::{ExactAdder, LoaAdder};
        let mut rng = StdRng::seed_from_u64(75);
        let wmat = init::uniform(&[4, 32], 0.05, 0.5, &mut rng);
        let col = init::uniform(&[32, 8], 0.05, 1.0, &mut rng);
        let l = lut(&ExactMul);
        let mut plain = ApproxExecutor::new(Arc::clone(&l), None);
        let mut exact_add =
            ApproxExecutor::new(Arc::clone(&l), None).with_adder(Arc::new(ExactAdder));
        let mut loa = ApproxExecutor::new(l, None).with_adder(Arc::new(LoaAdder::new(5)));
        let y0 = plain.forward(&wmat, &col, Mode::Eval).y;
        let y1 = exact_add.forward(&wmat, &col, Mode::Eval).y;
        let y2 = loa.forward(&wmat, &col, Mode::Eval).y;
        assert_eq!(y0, y1, "exact adder is a no-op");
        assert_ne!(y0, y2, "LOA accumulation must perturb the output");
    }

    #[test]
    fn health_telemetry_samples_eps_without_changing_outputs() {
        let mut rng = StdRng::seed_from_u64(76);
        let wmat = init::uniform(&[4, 16], -0.5, 0.5, &mut rng);
        let col = init::uniform(&[16, 8], -1.0, 1.0, &mut rng);
        let l = lut(&TruncatedMul::new(5));
        let model = PiecewiseLinearError::new(-0.05, 0.0, -10.0, 10.0);

        let mut plain = ApproxExecutor::new(Arc::clone(&l), Some(model));
        let y_plain = plain.forward(&wmat, &col, Mode::Train).y;

        axnn_obs::reset();
        let mut ex = ApproxExecutor::new(l, Some(model));
        ex.set_obs_label("conv");
        axnn_obs::set_health_enabled(true);
        let y = ex.forward(&wmat, &col, Mode::Train).y;
        axnn_obs::set_health_enabled(false);

        assert_eq!(
            y.as_slice(),
            y_plain.as_slice(),
            "telemetry must not change bits"
        );
        let p = axnn_obs::RunProfile::capture("t");
        let eps = p
            .hists
            .iter()
            .find(|h| h.name == "eps:conv")
            .expect("first call is always ε-sampled");
        assert_eq!(eps.count, (4 * 8) as u64, "one ε value per output");
        assert!(
            p.hists.iter().any(|h| h.name == "ge_res:conv"),
            "GE residuals recorded when a model is attached"
        );
        let lin = p
            .health
            .iter()
            .find(|r| r.name == "ge_lin:conv")
            .expect("K-mask coverage recorded");
        assert_eq!(lin.total, (4 * 8) as u64);
        assert!(p.health.iter().any(|r| r.name == "sat_x:conv"));
        axnn_obs::reset();
    }

    #[test]
    fn compiled_backend_matches_interpreter_bits() {
        use axnn_axmul::adder::LoaAdder;
        let mut rng = StdRng::seed_from_u64(77);
        let wmat = init::uniform(&[4, 16], -0.5, 0.5, &mut rng);
        let col = init::uniform(&[16, 8], -1.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..4).map(|i| 0.05 * i as f32 - 0.1).collect();
        let l = lut(&TruncatedMul::new(5));
        let variants: Vec<ApproxExecutor> = vec![
            ApproxExecutor::new(Arc::clone(&l), None),
            ApproxExecutor::new(Arc::clone(&l), Some(PiecewiseLinearError::constant(-0.3))),
            ApproxExecutor::new(Arc::clone(&l), None).with_adder(Arc::new(LoaAdder::new(5))),
        ];
        for mut ex in variants {
            let y = ex.forward(&wmat, &col, Mode::Eval).y;
            let mut backend = ex.compile_backend(&wmat).expect("compiles without GE");
            assert_eq!(backend.out_rows(), 4);
            assert_eq!(backend.kind(), ExecutorKind::Approximate);
            let mut out = vec![0.0f32; 4 * 8];
            backend.forward(&col, Some(&bias), gemm::Epilogue::Relu, &mut out);
            for r in 0..4 {
                for j in 0..8 {
                    let expect = (y.as_slice()[r * 8 + j] + bias[r]).max(0.0);
                    assert_eq!(
                        out[r * 8 + j].to_bits(),
                        expect.to_bits(),
                        "row {r} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn sloped_error_model_blocks_compilation() {
        let mut rng = StdRng::seed_from_u64(78);
        let wmat = init::uniform(&[2, 4], -0.5, 0.5, &mut rng);
        let sloped = PiecewiseLinearError::new(-0.05, 0.0, -10.0, 10.0);
        let ge = ApproxExecutor::new(lut(&TruncatedMul::new(5)), Some(sloped));
        assert!(
            ge.compile_backend(&wmat).is_none(),
            "GE needs the reference GEMM every call; must fall back"
        );
    }

    #[test]
    fn transferred_activation_quantizer_is_respected() {
        let q = Quantizer::with_step(0.125, QuantSpec::activations_8bit());
        let mut ex = ApproxExecutor::new(lut(&ExactMul), None).with_activation_quantizer(q);
        let mut rng = StdRng::seed_from_u64(74);
        let wmat = init::uniform(&[2, 4], -0.5, 0.5, &mut rng);
        // Inputs far outside the preset range are clipped by the preset step.
        let col = init::uniform(&[4, 3], -100.0, 100.0, &mut rng);
        let out = ex.forward(&wmat, &col, Mode::Eval);
        let clip = 127.0 * 0.125;
        for &v in out.col_eff.as_slice() {
            assert!(v.abs() <= clip + 1e-5, "{v} beyond preset clip {clip}");
        }
    }
}
