//! # axnn-proxsim
//!
//! ProxSim-analogue execution engine (paper ref. \[5\]): runs the GEMM-lowered
//! conv/FC layers of a quantized network through a behavioural approximate
//! multiplier, served from an exhaustive signed lookup table.
//!
//! The crate provides:
//!
//! - [`SignedLut`]: a signed product table over the full 8A4W code range,
//!   built once per multiplier;
//! - [`approx_matmul`]: integer GEMM over quantized codes with i64
//!   accumulation (eq. 4: `ỹᵢⱼ = Σₖ g̃(Xᵢₖ, Wₖⱼ)`);
//! - [`PiecewiseLinearError`]: the paper's eq. (11) error model
//!   `f(y) = min(a, max(k·y + c, b))` whose derivative drives gradient
//!   estimation (eq. 12–13) — the Monte-Carlo fitting lives in the
//!   `approxkd` crate;
//! - [`ApproxExecutor`] / [`approximate_network`]: the drop-in layer
//!   executor combining 8A4W quantization, LUT-served approximate GEMM and
//!   the optional `(1 + K)` gradient scale.
//!
//! # Example
//!
//! ```
//! use axnn_axmul::{Multiplier, TruncatedMul};
//! use axnn_proxsim::SignedLut;
//!
//! let m = TruncatedMul::new(3);
//! let lut = SignedLut::build(&m);
//! assert_eq!(lut.get(-9, 3), m.mul_signed(-9, 3));
//! ```

mod error_model;
mod executor;
pub mod gemm;
mod signed_lut;

pub use error_model::PiecewiseLinearError;
pub use executor::{
    approximate_network, approximate_network_assigned, approximate_network_where, ApproxExecutor,
};
pub use gemm::{approx_matmul, approx_matmul_with_adder};
pub use signed_lut::SignedLut;
